"""Frame-pacing analysis.

Mean FPS hides how *evenly* frames arrive; perceived smoothness is a
pacing property.  Given a sequence of frame timestamps (decode or
photon times), :func:`pacing_report` summarizes the inter-frame gaps
and counts **stutter events** — gaps exceeding a multiple of the median
gap, the classic frame-time-spike definition used by frame-analysis
tools.  The user-study surrogate's stutter question and the VRR display
comparison both build on these numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.metrics.stats import mean, percentile, stddev

__all__ = ["PacingReport", "pacing_report"]


@dataclass(frozen=True)
class PacingReport:
    """Inter-frame-gap summary of one frame stream."""

    n_frames: int
    mean_gap_ms: float
    median_gap_ms: float
    p99_gap_ms: float
    max_gap_ms: float
    #: Standard deviation of gaps (raw jitter).
    jitter_ms: float
    #: Gaps exceeding ``stutter_factor`` x median.
    stutter_events: int
    stutter_factor: float

    @property
    def mean_fps(self) -> float:
        return 1000.0 / self.mean_gap_ms

    @property
    def stutter_rate_per_minute(self) -> float:
        total_s = self.mean_gap_ms * (self.n_frames - 1) / 1000.0
        if total_s <= 0:
            raise ValueError("stream too short")
        return self.stutter_events * 60.0 / total_s

    @property
    def badness(self) -> float:
        """A single smoothness score: p99 gap relative to the median.

        1.0 is perfectly even pacing; 2.0 means the worst percentile of
        frames waited twice the typical time.
        """
        return self.p99_gap_ms / self.median_gap_ms


def pacing_report(
    frame_times: Sequence[float],
    stutter_factor: float = 2.0,
) -> PacingReport:
    """Analyze the pacing of a timestamp sequence (must be sorted).

    Raises ``ValueError`` on fewer than 3 frames or unsorted input.
    """
    times = list(frame_times)
    if len(times) < 3:
        raise ValueError("need at least 3 frames for pacing analysis")
    if stutter_factor <= 1.0:
        raise ValueError("stutter_factor must exceed 1")
    gaps: List[float] = []
    for a, b in zip(times, times[1:]):
        if b < a:
            raise ValueError("frame times must be sorted")
        gaps.append(b - a)
    median = percentile(gaps, 50)
    if median <= 0:
        raise ValueError("degenerate stream (zero median gap)")
    return PacingReport(
        n_frames=len(times),
        mean_gap_ms=mean(gaps),
        median_gap_ms=median,
        p99_gap_ms=percentile(gaps, 99),
        max_gap_ms=max(gaps),
        jitter_ms=stddev(gaps),
        stutter_events=sum(1 for g in gaps if g > stutter_factor * median),
        stutter_factor=stutter_factor,
    )
