"""Windowed QoS-satisfaction checks.

ODR's regulation goal is *not* per-frame regularity — "ODR aims at
ensuring the FPS target is met for each small period (e.g., 200 ms)"
(Sec. 5.2).  :func:`qos_satisfaction` evaluates exactly that: over every
window of the given size, did the delivered frame count correspond to at
least the target FPS?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.simcore.tracing import windowed_counts

__all__ = ["QosReport", "qos_satisfaction"]


@dataclass(frozen=True)
class QosReport:
    """Result of a windowed FPS-target check."""

    target_fps: float
    window_ms: float
    n_windows: int
    n_satisfied: int
    worst_window_fps: float

    @property
    def satisfaction(self) -> float:
        """Fraction of windows meeting the target (1.0 = always met)."""
        if self.n_windows == 0:
            raise ValueError("no complete windows")
        return self.n_satisfied / self.n_windows

    @property
    def met(self) -> bool:
        """True if every window met the target."""
        return self.n_windows > 0 and self.n_satisfied == self.n_windows


def qos_satisfaction(
    display_times: Sequence[float],
    target_fps: float,
    start: float,
    end: float,
    window_ms: float = 200.0,
    tolerance_frames: float = 1.0,
) -> QosReport:
    """Check the paper's windowed QoS criterion.

    Parameters
    ----------
    display_times:
        Client-side frame display timestamps (ms).
    target_fps:
        The QoS target (30 or 60 in the paper).
    window_ms:
        QoS window size; the paper uses 200 ms.
    tolerance_frames:
        Frame-count slack per window.  A 200 ms window at 60 FPS expects
        12 frames; boundary effects make a ±1 frame quantization error
        unavoidable, so the default accepts ``expected - 1``.
    """
    if target_fps <= 0:
        raise ValueError("target_fps must be positive")
    counts = windowed_counts(display_times, window_ms, start, end)
    expected = target_fps * window_ms / 1000.0
    threshold = expected - tolerance_frames
    satisfied = sum(1 for c in counts if c >= threshold)
    worst = min(counts) * 1000.0 / window_ms if counts else 0.0
    return QosReport(
        target_fps=target_fps,
        window_ms=window_ms,
        n_windows=len(counts),
        n_satisfied=satisfied,
        worst_window_fps=worst,
    )
