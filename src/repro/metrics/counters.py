"""Per-stage frame-rate accounting and FPS-gap computation.

The paper counts, for every one-second window, how many frames completed
each pipeline step: *render FPS* in the cloud, *encode FPS* in the server
proxy, and *decode FPS* at the client ("client FPS").  The **FPS gap**
is the difference between cloud rendering FPS and client decoding FPS —
every frame in the gap was rendered and then thrown away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.metrics.stats import BoxStats, summarize
from repro.simcore.tracing import windowed_counts

__all__ = ["FpsCounter", "FpsGapReport", "StageFps"]

#: Canonical pipeline step names (paper Fig. 2 steps 3-7).
RENDER = "render"
COPY = "copy"
ENCODE = "encode"
TRANSMIT = "transmit"
DECODE = "decode"


@dataclass(frozen=True)
class StageFps:
    """FPS summary of one pipeline stage over a run."""

    stage: str
    mean_fps: float
    series: List[float]
    box: BoxStats


@dataclass(frozen=True)
class FpsGapReport:
    """Render-vs-client FPS gap over a run.

    ``mean_gap`` is the average of per-window (render − decode) counts;
    ``max_gap`` the largest window gap — the two columns of Table 2.
    """

    mean_gap: float
    max_gap: float
    series: List[float]


@dataclass
class FpsCounter:
    """Records frame completion timestamps per pipeline stage.

    Pipeline stages call :meth:`record` with the stage name and the
    simulation time at which a frame finished that step; the analysis
    methods then bucket the timestamps into windows.
    """

    window_ms: float = 1000.0
    _events: Dict[str, List[float]] = field(default_factory=dict)

    def record(self, stage: str, time_ms: float) -> None:
        """Record that a frame completed ``stage`` at ``time_ms``."""
        self._events.setdefault(stage, []).append(time_ms)

    def count(self, stage: str) -> int:
        """Total frames that completed ``stage``."""
        return len(self._events.get(stage, []))

    def times(self, stage: str) -> List[float]:
        """Raw completion timestamps for ``stage``."""
        return list(self._events.get(stage, []))

    def stages(self) -> List[str]:
        return sorted(self._events)

    # -- analysis --------------------------------------------------------

    def fps_series(
        self, stage: str, start: float, end: float, window_ms: Optional[float] = None
    ) -> List[float]:
        """Per-window FPS of ``stage`` over ``[start, end)``.

        Counts are scaled to frames-per-second regardless of window size.
        """
        window = window_ms if window_ms is not None else self.window_ms
        counts = windowed_counts(self._events.get(stage, []), window, start, end)
        scale = 1000.0 / window
        return [c * scale for c in counts]

    def mean_fps(self, stage: str, start: float, end: float) -> float:
        """Average FPS of ``stage`` over ``[start, end)``."""
        if end <= start:
            raise ValueError("empty measurement window")
        in_range = [t for t in self._events.get(stage, []) if start <= t < end]
        return len(in_range) * 1000.0 / (end - start)

    def stage_fps(self, stage: str, start: float, end: float) -> StageFps:
        """Full FPS summary (mean, per-window series, box stats)."""
        series = self.fps_series(stage, start, end)
        if not series:
            raise ValueError(f"no complete windows for stage {stage!r}")
        return StageFps(
            stage=stage,
            mean_fps=self.mean_fps(stage, start, end),
            series=series,
            box=summarize(series),
        )

    def fps_gap(
        self,
        start: float,
        end: float,
        cloud_stage: str = RENDER,
        client_stage: str = DECODE,
    ) -> FpsGapReport:
        """Windowed FPS gap between cloud rendering and client decoding.

        Negative per-window gaps are clamped to zero: a window where the
        client decoded more frames than were rendered (draining queued
        frames) is not "excessive rendering".
        """
        cloud = self.fps_series(cloud_stage, start, end)
        client = self.fps_series(client_stage, start, end)
        if not cloud or not client:
            raise ValueError("no complete windows for gap computation")
        series = [max(0.0, c - d) for c, d in zip(cloud, client)]
        return FpsGapReport(
            mean_gap=sum(series) / len(series),
            max_gap=max(series),
            series=series,
        )
