"""Measurement machinery for simulated cloud-3D runs.

Mirrors what the Pictor benchmarking framework measures on the real
system:

* per-stage frame rates (render / encode / decode FPS) and the **FPS
  gap** between cloud rendering and client decoding — the paper's
  headline inefficiency metric (Fig. 1, Fig. 3, Table 2);
* **motion-to-photon (MtP) latency** from user input to the displayed
  responding frame (Fig. 6, Fig. 9b, Fig. 11);
* windowed **QoS checks** — "ODR could ensure 30 or 60 FPS for every
  200 ms interval at least" (Sec. 5.2);
* distribution summaries matching the paper's box plots (1 %ile,
  25 %ile, mean, 75 %ile, 99 %ile).
"""

from repro.metrics.counters import FpsCounter, FpsGapReport, StageFps
from repro.metrics.latency import LatencySample, MtpLatencyTracker
from repro.metrics.qos import QosReport, qos_satisfaction
from repro.metrics.recovery import RecoveryStats, compute_recovery, recovery_stats
from repro.metrics.stats import (
    BootstrapCI,
    BoxStats,
    MannWhitneyResult,
    bootstrap_diff_ci,
    bootstrap_mean_ci,
    mann_whitney_u,
    mean,
    percentile,
    summarize,
)

__all__ = [
    "BootstrapCI",
    "BoxStats",
    "FpsCounter",
    "FpsGapReport",
    "LatencySample",
    "MannWhitneyResult",
    "MtpLatencyTracker",
    "QosReport",
    "RecoveryStats",
    "StageFps",
    "compute_recovery",
    "recovery_stats",
    "bootstrap_diff_ci",
    "bootstrap_mean_ci",
    "mann_whitney_u",
    "mean",
    "percentile",
    "qos_satisfaction",
    "summarize",
]
