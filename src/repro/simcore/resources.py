"""Synchronization primitives built on the event engine.

These are the shared-state building blocks the cloud-3D pipeline is made
of: bounded FIFO stores model queues between pipeline stages, resources
model exclusive devices (the GPU, the encoder), and gates model binary
conditions processes can block on (ODR's buffer-swap waits).
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional

from repro.simcore.engine import Environment, Event, SimulationError

__all__ = ["Gate", "PriorityStore", "Resource", "Store"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""


class Store:
    """A bounded FIFO store of items.

    ``put`` blocks (returns a pending event) when the store is full;
    ``get`` blocks when it is empty.  With ``capacity=1`` this is a
    classic single-slot hand-off buffer.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Store ``item``; the returned event fires once it is stored."""
        event = StorePut(self, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Retrieve the oldest item; the event's value is the item."""
        event = StoreGet(self.env)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: pop and return the oldest item, or None."""
        if not self.items:
            return None
        item = self._pop_item()
        self._dispatch()
        return item

    def clear(self) -> List[Any]:
        """Drop all stored items (used for obsolete-frame flushing)."""
        dropped, self.items = self.items, []
        self._dispatch()
        return dropped

    # -- internals -----------------------------------------------------

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _pop_item(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        """Match waiting puts with free slots and waiting gets with items."""
        progressed = True
        while progressed:
            progressed = False
            while self._put_waiters and len(self.items) < self.capacity:
                put = self._put_waiters.pop(0)
                self._store_item(put.item)
                put.succeed()
                progressed = True
            while self._get_waiters and self.items:
                get = self._get_waiters.pop(0)
                get.succeed(self._pop_item())
                progressed = True


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item first.

    Items must be orderable; the common pattern is ``(priority, seq,
    payload)`` tuples.  Used for the priority-frame fast path where
    input-triggered frames overtake refresh frames.
    """

    def _store_item(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _pop_item(self) -> Any:
        return heapq.heappop(self.items)


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`."""


class Resource:
    """A counted exclusive resource with FIFO granting.

    Usage::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: List[ResourceRequest] = []
        self.queue: List[ResourceRequest] = []

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        event = ResourceRequest(self.env)
        self.queue.append(event)
        self._grant()
        return event

    def release(self, request: ResourceRequest) -> None:
        if request in self.users:
            self.users.remove(request)
        elif request in self.queue:
            self.queue.remove(request)
        else:
            raise SimulationError("release of unknown request")
        self._grant()

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            request = self.queue.pop(0)
            self.users.append(request)
            request.succeed()


class Gate:
    """A binary open/closed condition processes can wait on.

    ``wait()`` returns an event that fires immediately if the gate is
    open, otherwise when the gate next opens.  Opening releases *all*
    current waiters (broadcast).  This models ODR's swap conditions:
    "the 3D application pauses its rendering until the buffers are
    swapped".
    """

    def __init__(self, env: Environment, is_open: bool = False) -> None:
        self.env = env
        self._open = is_open
        self._waiters: List[Event] = []

    @property
    def is_open(self) -> bool:
        return self._open

    def wait(self) -> Event:
        event = Event(self.env)
        if self._open:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def open(self) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    def close(self) -> None:
        """Close the gate; subsequent waits will block."""
        self._open = False

    def pulse(self) -> None:
        """Release current waiters without leaving the gate open."""
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()
