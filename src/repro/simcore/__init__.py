"""Discrete-event simulation core.

``repro.simcore`` is a small, self-contained discrete-event simulation
(DES) engine in the style of SimPy: simulation logic is written as Python
generator functions ("processes") that ``yield`` events (timeouts, store
gets/puts, other processes, ...) and are resumed by the environment when
those events fire.

The engine is the substrate for every experiment in this repository: the
cloud-3D pipeline (:mod:`repro.pipeline`), the FPS regulators
(:mod:`repro.regulators`), and ODR itself (:mod:`repro.core`) are all
simcore processes.

Public API
----------
:class:`Environment`
    The event loop: clock, scheduler, process factory.
:class:`Event`, :class:`Timeout`, :class:`Process`
    Event primitives.
:class:`Interrupt`
    Exception thrown into a process by :meth:`Process.interrupt`.
:class:`AllOf`, :class:`AnyOf`
    Composite events.
:class:`Store`, :class:`PriorityStore`, :class:`Resource`, :class:`Gate`
    Shared-state synchronization primitives.
:class:`SeededRng`, :class:`RngRegistry`
    Deterministic per-component random streams and their named registry.
:class:`IntervalTrace`
    Busy-interval recorder used by the hardware models.
"""

from repro.simcore.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ProcessGenerator,
    SimulationError,
    Timeout,
)
from repro.simcore.resources import Gate, PriorityStore, Resource, Store
from repro.simcore.rng import RngRegistry, SeededRng
from repro.simcore.tracing import IntervalTrace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Gate",
    "Interrupt",
    "IntervalTrace",
    "PriorityStore",
    "Process",
    "ProcessGenerator",
    "Resource",
    "RngRegistry",
    "SeededRng",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
]
