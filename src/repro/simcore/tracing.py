"""Busy-interval tracing.

The hardware-efficiency models (:mod:`repro.hardware`) do not get PMU
counters from real silicon; instead they are driven by *when each
pipeline stage was busy* in simulated time.  Stages record their busy
intervals into an :class:`IntervalTrace`; the DRAM model then computes
how often memory-intensive stages overlapped, which the paper identifies
as the mechanism behind row-buffer contention ("frequent rendering will
increase the probability that these tasks execute simultaneously").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["IntervalTrace", "TraceRecord", "overlap_profile"]


@dataclass(frozen=True)
class TraceRecord:
    """One busy interval of one pipeline stage."""

    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class IntervalTrace:
    """Accumulates per-stage busy intervals during a simulation run.

    Records are kept both in global insertion order (for cross-stage
    analyses like :func:`overlap_profile`) and indexed per stage, so
    repeated per-stage queries — ``busy_time``/``utilization`` are
    called once per stage per window by the hardware reports — cost
    O(records of that stage) instead of O(all records).
    """

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []
        self._by_stage: Dict[str, List[TraceRecord]] = {}

    def record(self, stage: str, start: float, end: float) -> None:
        """Record that ``stage`` was busy on ``[start, end)``."""
        if end < start:
            raise ValueError(f"interval ends before it starts: {start}..{end}")
        if end > start:
            rec = TraceRecord(stage, start, end)
            self._records.append(rec)
            self._by_stage.setdefault(stage, []).append(rec)

    def __len__(self) -> int:
        return len(self._records)

    def records(self, stage: Optional[str] = None) -> List[TraceRecord]:
        """All records, optionally filtered by stage name."""
        if stage is None:
            return list(self._records)
        return list(self._by_stage.get(stage, ()))

    def stages(self) -> List[str]:
        return sorted(self._by_stage)

    def busy_time(self, stage: str, start: float = 0.0, end: float = float("inf")) -> float:
        """Total busy time of ``stage`` clipped to ``[start, end)``."""
        total = 0.0
        for r in self._by_stage.get(stage, ()):
            lo = max(r.start, start)
            hi = min(r.end, end)
            if hi > lo:
                total += hi - lo
        return total

    def utilization(self, stage: str, start: float, end: float) -> float:
        """Busy fraction of ``stage`` over the window ``[start, end)``."""
        if end <= start:
            raise ValueError("empty window")
        return self.busy_time(stage, start, end) / (end - start)


def overlap_profile(
    trace: IntervalTrace,
    stages: Sequence[str],
    start: float,
    end: float,
) -> Dict[int, float]:
    """Fraction of ``[start, end)`` during which exactly *k* of ``stages``
    were simultaneously busy.

    Returns a mapping ``k -> fraction`` with keys ``0..len(stages)``.
    This is the driver for the DRAM row-buffer contention model: the
    more time two or more memory-intensive stages overlap, the higher
    the row-buffer miss rate.
    """
    if end <= start:
        raise ValueError("empty window")
    wanted = set(stages)
    deltas: List[Tuple[float, int]] = []
    for r in trace.records():
        if r.stage not in wanted:
            continue
        lo = max(r.start, start)
        hi = min(r.end, end)
        if hi > lo:
            deltas.append((lo, +1))
            deltas.append((hi, -1))
    profile = {k: 0.0 for k in range(len(stages) + 1)}
    if not deltas:
        profile[0] = 1.0
        return profile
    deltas.sort()
    span = end - start
    level = 0
    prev = start
    for time, delta in deltas:
        if time > prev:
            profile[min(level, len(stages))] += (time - prev) / span
        level += delta
        prev = time
    if end > prev:
        profile[min(level, len(stages))] += (end - prev) / span
    return profile


def windowed_counts(times: Iterable[float], window: float, start: float, end: float) -> List[int]:
    """Count events per fixed window over ``[start, end)``.

    Shared helper for FPS-style counters: given the completion times of
    some per-frame step, return the number of completions in each
    ``window``-sized bucket.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if end <= start:
        return []
    sorted_times = sorted(t for t in times if start <= t < end)
    n_windows = int((end - start) // window)
    counts: List[int] = []
    for i in range(n_windows):
        lo = start + i * window
        hi = lo + window
        a = bisect.bisect_left(sorted_times, lo)
        b = bisect.bisect_left(sorted_times, hi)
        counts.append(b - a)
    return counts
