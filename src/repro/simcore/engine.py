"""The discrete-event simulation engine.

The engine follows the classic event-calendar design:

* an :class:`Environment` owns the simulation clock and a binary heap of
  scheduled events ordered by ``(time, priority, sequence)``;
* an :class:`Event` is a one-shot occurrence with a value (or an
  exception) and a list of callbacks;
* a :class:`Process` wraps a Python generator.  Each ``yield`` hands an
  event back to the engine; when that event fires, the generator is
  resumed with the event's value (or the event's exception is thrown
  into it).

Time is a plain ``float``.  Throughout this repository the unit is
**milliseconds** (the natural unit for frame timing), but the engine is
unit-agnostic.

Determinism: two events scheduled at the same time fire in scheduling
order (FIFO), and all randomness in the wider library flows through
:class:`repro.simcore.rng.SeededRng`, so a simulation run is a pure
function of its configuration and seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple, Union

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "SimulationError",
    "Timeout",
]

#: A callback invoked when an event is processed.
Callback = Callable[["Event"], None]

#: The generator type of a simulation process: yields events, may be
#: resumed with any event value, may return any value.
ProcessGenerator = Generator["Event", Any, Any]

#: Priority for events that must fire before normal events at the same time.
URGENT = 0
#: Default event priority.
NORMAL = 1

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (double trigger, bad yield, ...)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is an arbitrary object supplied by the
    interrupter; ODR's PriorityFrame, for example, interrupts the render
    loop's swap wait with the triggering user input as the cause.
    """

    @property
    def cause(self) -> Any:
        """The object passed to :meth:`Process.interrupt`."""
        return self.args[0]


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* when given a value via
    :meth:`succeed` (or an exception via :meth:`fail`), and *processed*
    once the environment has run its callbacks.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callback]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set by Condition events to clean up when a sibling fires first.
        self._defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback use)."""
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def __repr__(self) -> str:
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at t={self.env.now:.3f}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def triggered(self) -> bool:  # a Timeout is born triggered
        return True


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        assert self.callbacks is not None  # freshly constructed, unprocessed
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, so processes can ``yield`` other
    processes to join them.
    """

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str = ""
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if running
        #: or finished).
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is about to be resumed is handled gracefully (the
        interrupt wins).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._target is None:
            # The process has just been created and not yet started, or is
            # being resumed this instant: deliver the interrupt via an
            # immediate failing event.
            raise SimulationError(f"cannot interrupt uninitialized {self!r}")
        # Detach from the waited-on event and schedule resumption with the
        # interrupt exception.
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        assert event.callbacks is not None  # freshly constructed, unprocessed
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)
        if self._target.callbacks is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None

    # -- engine plumbing -----------------------------------------------

    def _resume(self, event: Event) -> None:
        """Resume the generator with the value/exception of ``event``."""
        hooks = self.env._resume_hooks
        if hooks is not None:
            hooks[0](self)
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    if not isinstance(exc, BaseException):
                        exc = SimulationError(repr(exc))
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                self._target = None
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                event = Event(self.env)
                event._ok = False
                event._value = exc
                continue

            if next_event.callbacks is not None:
                # Pending or triggered-but-unprocessed: wait for it.
                self._target = next_event
                next_event.callbacks.append(self._resume)
                break
            # Already processed: loop around immediately with its value.
            event = next_event

        self.env._active_process = None
        if hooks is not None:
            hooks[1](self)

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Condition(Event):
    """Base class for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events: List[Event] = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")
        # Register after validation so no callback leaks on error.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)
        # An empty condition is vacuously satisfied (SimPy semantics).
        if not self._events and not self.triggered and self._evaluate(0, 0):
            self.succeed(ConditionValue([]))

    def _evaluate(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self._count, len(self._events)):
            self.succeed(ConditionValue(self._events))


class ConditionValue:
    """Mapping-like view of the triggered events of a condition."""

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, event: Event) -> Any:
        if not event.triggered:
            raise KeyError(event)
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events and event.triggered

    def todict(self) -> Dict[Event, Any]:
        return {e: e.value for e in self.events if e.triggered}


class AllOf(Condition):
    """Triggers once *all* constituent events have triggered."""

    def _evaluate(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(Condition):
    """Triggers once *any* constituent event has triggered."""

    def _evaluate(self, count: int, total: int) -> bool:
        return count >= 1 or total == 0


#: Paired (begin, end) process-resume observers, resolved once per probe.
_ResumeHooks = Tuple[Callable[["Process"], None], Callable[["Process"], None]]


def _resolve_resume_hooks(probe: Optional[Any]) -> Optional[_ResumeHooks]:
    """Extract the optional resume-profiling hooks from a probe.

    Resolved once at probe-attach time so the per-resume cost on the
    hot path is a single ``is None`` branch; probes without the
    extended interface (``on_resume_begin`` / ``on_resume_end``) keep
    working unchanged.  The hooks must be defined on the probe's
    *class* — detection looks at the type, never the instance, so
    attaching a probe performs no instance attribute access.
    """
    if probe is None:
        return None
    cls = type(probe)
    if (
        getattr(cls, "on_resume_begin", None) is None
        or getattr(cls, "on_resume_end", None) is None
    ):
        return None
    # class lookup succeeded, so these bind without __getattr__ fallback
    return (probe.on_resume_begin, probe.on_resume_end)


class Environment:
    """The simulation environment: clock, event calendar, process factory.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (default ``0.0``).
    probe:
        Optional engine observer (duck-typed like
        :class:`repro.obs.probes.EngineProbe`) notified of scheduled
        events, fired events, and started processes.  ``None`` (the
        default) keeps the event loop's fast path free of observer
        calls — each hook site is one ``is None`` branch.
    """

    def __init__(self, initial_time: float = 0.0, probe: Optional[Any] = None) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        self._probe = probe
        self._resume_hooks = _resolve_resume_hooks(probe)

    @property
    def now(self) -> float:
        """Current simulation time (milliseconds by library convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def probe(self) -> Optional[Any]:
        """The attached engine observer, if any."""
        return self._probe

    def set_probe(self, probe: Optional[Any]) -> None:
        """Attach (or detach, with ``None``) the engine observer."""
        self._probe = probe
        self._resume_hooks = _resolve_resume_hooks(probe)

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put ``event`` on the calendar ``delay`` time units from now."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))
        if self._probe is not None:
            self._probe.on_event_scheduled(self._now + delay, priority, len(self._queue))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no more events")
        self._now, _, _, event = heapq.heappop(self._queue)
        if self._probe is not None:
            self._probe.on_event_fired(self._now, len(self._queue))
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # An unhandled failure: surface it instead of losing it.
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise SimulationError(repr(exc))

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the calendar is empty;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event triggers, returning its
          value.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while self._queue and not stop.processed:
                self.step()
            if not stop.triggered:
                raise SimulationError("run-until event never triggered")
            if not stop.ok:
                raise stop.value
            return stop.value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    # -- factories -----------------------------------------------------

    def event(self) -> Event:
        """Create a pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        started = Process(self, generator, name=name)
        if self._probe is not None:
            self._probe.on_process_started(started.name)
        return started

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    def call_at(self, when: float, func: Callable[[], None]) -> None:
        """Run ``func()`` at absolute simulation time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")

        def _caller(_event: Event) -> None:
            func()

        event = Event(self)
        event._ok = True
        event._value = None
        assert event.callbacks is not None  # freshly constructed, unprocessed
        event.callbacks.append(_caller)
        self.schedule(event, delay=when - self._now)
