"""Deterministic random-number streams.

Every stochastic component in the simulation (render times, encode
times, network jitter, user inputs, frame sizes, ...) draws from its own
named :class:`SeededRng` stream derived from a single experiment seed.
This gives two properties the evaluation depends on:

* **Reproducibility** — a run is a pure function of (config, seed).
* **Common random numbers** — comparing two regulators under the same
  seed exposes them to the *same* workload randomness, which sharpens
  paired comparisons (the paper compares regulators on the same
  benchmark runs).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterator, List, Sequence, TypeVar

import numpy as np

__all__ = ["RngRegistry", "SeededRng", "derive_seed"]

T = TypeVar("T")


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a child seed from a root seed and a path of names.

    Hash-based so that adding a new stream never perturbs existing
    streams (unlike sequential ``seed + i`` schemes).
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode())
    for name in names:
        digest.update(b"/")
        digest.update(str(name).encode())
    return int.from_bytes(digest.digest()[:8], "little")


class SeededRng:
    """A named deterministic random stream.

    Thin wrapper over :class:`numpy.random.Generator` adding the
    distributions the workload models need and the hash-derived
    sub-stream factory.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._gen = np.random.default_rng(self.seed)

    def child(self, *names: object) -> "SeededRng":
        """Create an independent sub-stream identified by ``names``."""
        return SeededRng(derive_seed(self.seed, *names), name="/".join(map(str, names)))

    # -- basic draws ----------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def random(self) -> float:
        return float(self._gen.random())

    def randint(self, low: int, high: int) -> int:
        """Integer in ``[low, high]`` inclusive."""
        return int(self._gen.integers(low, high + 1))

    def choice(self, seq: Sequence[T]) -> T:
        return seq[int(self._gen.integers(0, len(seq)))]

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def exponential(self, mean: float) -> float:
        """Exponential with the given *mean* (not rate)."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        return float(self._gen.exponential(mean))

    def lognormal_mean_cv(self, mean: float, cv: float) -> float:
        """Log-normal draw parameterized by mean and coefficient of variation.

        This is the natural parameterization for frame-time bodies: the
        paper's CDFs (Fig. 4a) show right-skewed distributions whose
        bulk sits well below 16.6 ms.
        """
        if mean <= 0:
            raise ValueError("mean must be positive")
        if cv < 0:
            raise ValueError("cv must be non-negative")
        if cv == 0:
            return mean
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - sigma2 / 2.0
        return float(self._gen.lognormal(mu, math.sqrt(sigma2)))

    def pareto(self, scale: float, alpha: float) -> float:
        """Pareto draw with minimum ``scale`` and shape ``alpha``."""
        if scale <= 0 or alpha <= 0:
            raise ValueError("scale and alpha must be positive")
        return float(scale * (1.0 + self._gen.pareto(alpha)))

    def bernoulli(self, p: float) -> bool:
        return bool(self._gen.random() < p)

    def poisson_interarrivals(self, rate_per_ms: float) -> Iterator[float]:
        """Infinite stream of exponential inter-arrival gaps (ms)."""
        if rate_per_ms <= 0:
            raise ValueError("rate must be positive")
        mean = 1.0 / rate_per_ms
        while True:
            yield float(self._gen.exponential(mean))

    def shuffle(self, seq: List[T]) -> None:
        self._gen.shuffle(seq)  # type: ignore[arg-type]

    def __repr__(self) -> str:
        return f"<SeededRng {self.name!r} seed={self.seed}>"


class RngRegistry:
    """The root of all randomness for one run: named, memoized streams.

    One registry is seeded from the experiment seed; every stochastic
    component asks it for a stream by path (``registry.stream("stage",
    "render")``).  Asking twice for the same path returns the *same*
    stream object, so components sharing a path share a draw sequence,
    and the set of registered paths documents exactly where randomness
    enters a run.

    ``simlint`` rule R1 enforces the inverse property: no module outside
    :mod:`repro.simcore.rng` may touch ``random`` / ``numpy.random``
    directly, so every draw in the simulation is reachable from a
    registry (or a :class:`SeededRng` derived the same hash-based way)
    and therefore a pure function of the experiment seed.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._root = SeededRng(self.root_seed, name="root")
        self._streams: Dict[str, SeededRng] = {}

    @property
    def root(self) -> SeededRng:
        """The root stream (prefer named sub-streams via :meth:`stream`)."""
        return self._root

    def stream(self, *names: object) -> SeededRng:
        """The memoized stream for ``names`` (created on first request)."""
        if not names:
            raise ValueError("stream path must not be empty")
        key = "/".join(map(str, names))
        stream = self._streams.get(key)
        if stream is None:
            stream = self._root.child(*names)
            self._streams[key] = stream
        return stream

    def registered(self) -> List[str]:
        """Sorted paths of every stream handed out so far."""
        return sorted(self._streams)

    def __repr__(self) -> str:
        return (
            f"<RngRegistry seed={self.root_seed} "
            f"streams={len(self._streams)}>"
        )
