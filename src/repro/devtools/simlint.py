"""``simlint`` — static analysis for discrete-event-simulation correctness.

The evaluation in this repository (FPS gaps, regulation latency, energy
deltas) is only reproducible because a simulation run is a bit-for-bit
pure function of ``(configuration, seed)``.  That property is easy to
break silently: one stray ``random.random()``, one wall-clock read in a
sim-path module, one iteration over an unordered set that feeds event
scheduling.  ``simlint`` turns the determinism conventions of this
codebase into machine-checked rules.

Rules
-----
R1
    No direct ``random`` / ``numpy.random`` use outside
    ``repro.simcore.rng``.  All randomness must flow through the seeded
    :class:`~repro.simcore.rng.RngRegistry` /
    :class:`~repro.simcore.rng.SeededRng` streams.
R2
    No wall-clock reads (``time.time``, ``time.perf_counter``,
    ``datetime.now``, ...) in sim-path modules.  The one sanctioned
    real-clock site is ``repro.obs.probes`` (allowlisted), which
    measures host wall time *about* the simulation, never *inside* it.
R3
    No mutable default arguments (shared across calls — and across
    simulation runs in the same process, breaking run independence).
R4
    No iteration over set expressions.  Python set order is governed by
    hash seeding and insertion history; an event scheduled from inside
    a set loop makes the calendar order depend on it.
R5
    A generator registered with the engine (``env.process(f(...))``)
    must actually contain a ``yield`` — a plain function silently
    becomes a no-op process (``TypeError`` at runtime at best).
R6
    No ``==`` / ``!=`` on float simulation timestamps; use
    ``math.isclose`` or an explicit epsilon.  Two code paths computing
    "the same" time can differ in the last ulp.
R7
    No module-level mutable state in ``repro.pipeline`` /
    ``repro.regulators`` / ``repro.core`` — state shared between runs in
    one process breaks run-to-run independence (``__all__`` exempt).
R8
    Every public function in ``repro.simcore`` / ``repro.core`` must be
    fully type-annotated (checked structurally; ``mypy --strict``
    enforces the semantics in CI).

Suppressions
------------
Append ``# simlint: disable=R4`` (comma-separate for several rules) to
the offending line, with a short justification::

    for item in locked_set:  # simlint: disable=R4 -- order irrelevant, result is summed

Use :func:`lint_paths` / :func:`lint_source` programmatically, or the
CLI: ``odr-sim lint src/repro [--format json] [--select R1,R2]``.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "lint_paths",
    "lint_source",
]

#: Rule id -> one-line summary (the CLI's ``--list-rules`` output).
RULES: Dict[str, str] = {
    "R1": "direct random/numpy.random use outside repro.simcore.rng",
    "R2": "wall-clock read in a sim-path module",
    "R3": "mutable default argument",
    "R4": "iteration over an unordered set expression",
    "R5": "non-generator registered as an engine process",
    "R6": "==/!= comparison of float simulation timestamps",
    "R7": "module-level mutable state in pipeline/regulators/core",
    "R8": "public simcore/core function not fully type-annotated",
}

#: Modules allowed to touch ``random`` / ``numpy.random`` directly (R1).
R1_ALLOWLIST = frozenset({"repro.simcore.rng"})

#: Modules allowed to read the host wall clock (R2).  ``repro.obs.probes``
#: measures wall-clock-per-simulated-second intentionally; the reading is
#: observational and never feeds back into event scheduling.
R2_ALLOWLIST = frozenset({"repro.obs.probes"})

#: Packages in which module-level mutable state is forbidden (R7).
R7_PACKAGES = ("repro.pipeline", "repro.regulators", "repro.core")

#: Packages whose public functions must be fully annotated (R8).
#: Mirrors the mypy --strict package list in pyproject/CI so the
#: structural check runs locally even where mypy is not installed.
R8_PACKAGES = (
    "repro.simcore",
    "repro.core",
    "repro.pipeline",
    "repro.multitenant",
    "repro.analysis",
)

_CLOCK_ATTRS_TIME = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_CLOCK_ATTRS_DATETIME = frozenset({"now", "utcnow", "today"})

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict", "bytearray"}
)

#: Name/attribute patterns that denote a float simulation timestamp (R6).
_TIMESTAMP_RE = re.compile(r"(^now$|^t_|_ms$|_time$|_at$|timestamp)")

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*(?:--|#)|$)")

#: Whole-file opt-out, for files whose violations are the point (e.g.
#: engine tests asserting exact float timestamps).  A rationale after
#: ``--`` is required; the comment must sit above the first def/class.
_FILE_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable-file=([A-Za-z0-9,\s]+?)\s*--\s*\S"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LintReport:
    """Aggregate result of one lint invocation."""

    findings: Tuple[Finding, ...]
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "counts": self.counts(),
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )


def _parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Per-line and whole-file rule suppressions in ``source``.

    Returns ``(line -> rules, file-level rules)``.  File-level disables
    (``# simlint: disable-file=R6 -- rationale``) are honored only in
    the header — comment/import lines before the first ``def``/``class``
    statement — so they cannot hide mid-file.
    """
    suppressed: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    in_header = True
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.lstrip()
        if in_header and (
            stripped.startswith("def ") or stripped.startswith("class ")
        ):
            in_header = False
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {r.strip().upper() for r in match.group(1).split(",") if r.strip()}
            suppressed[lineno] = rules
        fmatch = _FILE_SUPPRESS_RE.search(line)
        if fmatch and in_header:
            file_rules.update(
                r.strip().upper() for r in fmatch.group(1).split(",") if r.strip()
            )
    return suppressed, file_rules


def _module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the ``repro`` package."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or ["repro"]
    return ".".join(parts)


def _function_is_generator(node: ast.AST) -> bool:
    """True if the function's own body (not nested defs) contains a yield."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if _function_is_generator(child):
            return True
    return False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CALLS
    return False


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # Union/intersection/difference of set expressions.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _looks_like_timestamp(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return bool(_TIMESTAMP_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_TIMESTAMP_RE.search(node.attr))
    return False


def _annotation_gaps(node: ast.FunctionDef) -> List[str]:
    """Names of the parameters (plus 'return') lacking annotations."""
    gaps: List[str] = []
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional + list(args.kwonlyargs):
        if arg.annotation is None:
            gaps.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        gaps.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        gaps.append("**" + args.kwarg.arg)
    if node.returns is None:
        gaps.append("return")
    return gaps


class _Checker(ast.NodeVisitor):
    """Single-pass AST walk applying every selected rule to one module."""

    def __init__(self, module: str, path: str, select: Set[str]):
        self.module = module
        self.path = path
        self.select = select
        self.findings: List[Finding] = []
        #: Import aliases: local name -> canonical dotted module name.
        self.aliases: Dict[str, str] = {}
        #: Names imported via ``from X import y`` -> "X.y".
        self.from_imports: Dict[str, str] = {}
        #: (class-qualified and bare) function name -> is-generator.
        self.generators: Dict[str, bool] = {}
        self._class_stack: List[str] = []
        self._func_depth = 0
        #: Deferred R5 checks: (callee key candidates, line, col).
        self._process_calls: List[Tuple[List[str], int, int]] = []

    # -- plumbing --------------------------------------------------------

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def _in_package(self, packages: Iterable[str]) -> bool:
        return any(
            self.module == pkg or self.module.startswith(pkg + ".") for pkg in packages
        )

    # -- imports (R1 / R2 bookkeeping and findings) ----------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = alias.name
            if alias.name.split(".")[0] == "random" and self.module not in R1_ALLOWLIST:
                self.report(
                    "R1",
                    node,
                    "import of 'random': draw from the seeded RngRegistry "
                    "(repro.simcore.rng) instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.from_imports[local] = f"{mod}.{alias.name}"
        if self.module not in R1_ALLOWLIST:
            if mod == "random" or mod.startswith("random."):
                self.report(
                    "R1",
                    node,
                    f"import from 'random' ({', '.join(a.name for a in node.names)}): "
                    "draw from the seeded RngRegistry instead",
                )
            if mod == "numpy.random" or mod.startswith("numpy.random.") or (
                mod == "numpy" and any(a.name == "random" for a in node.names)
            ):
                self.report(
                    "R1",
                    node,
                    "import of numpy.random: draw from the seeded RngRegistry instead",
                )
        if self.module not in R2_ALLOWLIST:
            if mod == "time":
                clocks = [a.name for a in node.names if a.name in _CLOCK_ATTRS_TIME]
                if clocks:
                    self.report(
                        "R2",
                        node,
                        f"wall-clock import from 'time' ({', '.join(clocks)}): "
                        "sim code must use Environment.now",
                    )
        self.generic_visit(node)

    # -- attribute / call uses (R1, R2) ----------------------------------

    def _resolves_to(self, node: ast.expr, canonical: str) -> bool:
        """Does ``node`` (Name/Attribute chain) denote module ``canonical``?"""
        if isinstance(node, ast.Name):
            return (
                self.aliases.get(node.id) == canonical
                or self.from_imports.get(node.id) == canonical
            )
        if isinstance(node, ast.Attribute):
            prefix, _, last = canonical.rpartition(".")
            return node.attr == last and self._resolves_to(node.value, prefix)
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.module not in R1_ALLOWLIST and node.attr == "random":
            if self._resolves_to(node.value, "numpy"):
                self.report(
                    "R1",
                    node,
                    "direct numpy.random access: draw from the seeded "
                    "RngRegistry (repro.simcore.rng) instead",
                )
        if self.module not in R2_ALLOWLIST:
            if node.attr in _CLOCK_ATTRS_TIME and self._resolves_to(node.value, "time"):
                self.report(
                    "R2",
                    node,
                    f"wall-clock read time.{node.attr}: simulation code must "
                    "use Environment.now (sim time), not host time",
                )
            elif node.attr in _CLOCK_ATTRS_DATETIME and (
                self._resolves_to(node.value, "datetime")
                or self._resolves_to(node.value, "datetime.datetime")
                or self._resolves_to(node.value, "datetime.date")
            ):
                self.report(
                    "R2",
                    node,
                    f"wall-clock read datetime...{node.attr}(): simulation "
                    "code must use Environment.now",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # R1: calling a default_rng imported from numpy.random.
        if (
            self.module not in R1_ALLOWLIST
            and isinstance(node.func, ast.Name)
            and self.from_imports.get(node.func.id, "").endswith("random.default_rng")
        ):
            self.report(
                "R1",
                node,
                "default_rng(): construct streams via the seeded RngRegistry instead",
            )
        # R2: calling a clock imported via ``from time import ...``.
        if (
            self.module not in R2_ALLOWLIST
            and isinstance(node.func, ast.Name)
            and self.from_imports.get(node.func.id, "").startswith("time.")
            and self.from_imports[node.func.id].split(".", 1)[1] in _CLOCK_ATTRS_TIME
        ):
            self.report(
                "R2",
                node,
                f"wall-clock call {node.func.id}(): simulation code must use "
                "Environment.now",
            )
        # R5: <env>.process(generator_call(...), ...).
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
            and node.args
            and isinstance(node.args[0], ast.Call)
        ):
            inner = node.args[0].func
            candidates: List[str] = []
            if isinstance(inner, ast.Name):
                candidates = [inner.id]
            elif isinstance(inner, ast.Attribute) and isinstance(inner.value, ast.Name):
                if inner.value.id == "self" and self._class_stack:
                    candidates = [f"{self._class_stack[-1]}.{inner.attr}", inner.attr]
                else:
                    candidates = [inner.attr]
            if candidates:
                self._process_calls.append(
                    (candidates, node.lineno, node.col_offset + 1)
                )
        self.generic_visit(node)

    # -- functions (R3, R8 + generator table for R5) ---------------------

    def _visit_function(self, node: ast.FunctionDef) -> None:
        qualname = (
            f"{self._class_stack[-1]}.{node.name}" if self._class_stack else node.name
        )
        is_gen = _function_is_generator(node)
        self.generators[qualname] = is_gen
        # Bare-name fallback: only overwrite a generator marker with
        # another generator (mixed homonyms stay permissive).
        if node.name not in self.generators or not self.generators[node.name]:
            self.generators[node.name] = is_gen

        # R3: mutable defaults.
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            if _is_mutable_literal(default):
                self.report(
                    "R3",
                    default,
                    f"mutable default argument in {node.name}(): shared across "
                    "calls and across simulation runs",
                )

        # R8: public API annotation completeness.
        if (
            self._in_package(R8_PACKAGES)
            and not node.name.startswith("_")
            and not any(cls.startswith("_") for cls in self._class_stack)
            and self._func_depth == 0
        ):
            gaps = _annotation_gaps(node)
            if gaps:
                self.report(
                    "R8",
                    node,
                    f"public function {qualname}() missing annotations for: "
                    + ", ".join(gaps),
                )

        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- iteration (R4) --------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report(
                "R4",
                node.iter,
                "iteration over a set: order depends on hashing; sort it "
                "(sorted(...)) before iterating in sim code",
            )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _is_set_expr(node.iter):
            self.report(
                "R4",
                node.iter,
                "comprehension over a set: order depends on hashing; sort it "
                "before iterating in sim code",
            )
        self.generic_visit(node)

    # -- comparisons (R6) ------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((left, right), (right, left)):
                if isinstance(other, (ast.Constant,)) and other.value is None:
                    break  # `x == None` is an identity-style check, not float math
                if _looks_like_timestamp(side):
                    self.report(
                        "R6",
                        node,
                        "==/!= on a float sim timestamp: use math.isclose or "
                        "an explicit epsilon",
                    )
                    break
        self.generic_visit(node)

    # -- module-level state (R7) -----------------------------------------

    def visit_Module(self, node: ast.Module) -> None:
        if self._in_package(R7_PACKAGES):
            self._check_module_state(node.body)
        self.generic_visit(node)

    def _check_module_state(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            elif isinstance(stmt, ast.If):
                # e.g. version guards at module level.
                self._check_module_state(stmt.body)
                self._check_module_state(stmt.orelse)
                continue
            if value is None or not _is_mutable_literal(value):
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if all(name.startswith("__") and name.endswith("__") for name in names):
                continue  # __all__ and friends: module metadata, never mutated
            self.report(
                "R7",
                stmt,
                f"module-level mutable state ({', '.join(names) or 'assignment'}): "
                "state shared across runs breaks run independence",
            )

    # -- deferred R5 resolution ------------------------------------------

    def finalize(self) -> None:
        for candidates, line, col in self._process_calls:
            for key in candidates:
                if key in self.generators:
                    if not self.generators[key]:
                        self.findings.append(
                            Finding(
                                rule="R5",
                                path=self.path,
                                line=line,
                                col=col,
                                message=(
                                    f"{candidates[0]}() is registered as an engine "
                                    "process but contains no yield"
                                ),
                            )
                        )
                    break


def _normalize_select(select: Optional[Iterable[str]]) -> Set[str]:
    if select is None:
        return set(RULES)
    chosen = {s.strip().upper() for s in select if s.strip()}
    unknown = chosen - set(RULES)
    if unknown:
        raise ValueError(f"unknown simlint rule(s): {', '.join(sorted(unknown))}")
    return chosen


def lint_source(
    source: str,
    module: str = "<snippet>",
    path: str = "<snippet>",
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint a source string; returns unsuppressed findings sorted by location."""
    chosen = _normalize_select(select)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="E1",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    checker = _Checker(module=module, path=path, select=chosen)
    checker.visit(tree)
    checker.finalize()
    suppressed, file_rules = _parse_suppressions(source)
    findings = [
        f
        for f in checker.findings
        if f.rule not in file_rules and f.rule not in suppressed.get(f.line, set())
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return files


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> LintReport:
    """Lint every ``.py`` file under ``paths``."""
    chosen = _normalize_select(select)  # reject unknown rules up-front
    select = sorted(chosen)
    findings: List[Finding] = []
    files = iter_python_files(paths)
    for file in files:
        source = file.read_text(encoding="utf-8")
        findings.extend(
            lint_source(
                source,
                module=_module_name_for(file),
                path=str(file),
                select=select,
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintReport(findings=tuple(findings), files_scanned=len(files))
