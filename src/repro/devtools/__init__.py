"""Developer tooling guarding the repository's reproducibility contract.

Two complementary halves:

:mod:`repro.devtools.simlint`
    Static analysis — eight AST rules (R1-R8) enforcing the determinism
    and DES-correctness conventions (seeded randomness only, no wall
    clock in sim paths, no mutable defaults, ordered iteration, real
    generators for engine processes, epsilon time comparisons, no
    module-level mutable state, annotated public simcore/core API).

:mod:`repro.devtools.determinism`
    Runtime verification — run a small scenario twice under the same
    seed, SHA-256 the full event schedule + frame spans, and fail on
    divergence.

Both are wired into the CLI (``odr-sim lint``,
``odr-sim verify-determinism``) and CI; see docs/STATIC_ANALYSIS.md.
"""

from repro.devtools.determinism import (
    DeterminismReport,
    RunFingerprint,
    ScheduleRecorder,
    fingerprint_run,
    verify_determinism,
)
from repro.devtools.simlint import (
    RULES,
    Finding,
    LintReport,
    lint_paths,
    lint_source,
)

__all__ = [
    "DeterminismReport",
    "Finding",
    "LintReport",
    "RULES",
    "RunFingerprint",
    "ScheduleRecorder",
    "fingerprint_run",
    "lint_paths",
    "lint_source",
    "verify_determinism",
]
