"""The analyzer's rule catalogue: ids, summaries, and long explanations.

One table drives everything: the CLI's ``--list-rules`` and
``--explain`` output, SARIF rule metadata, and the rule-index table in
``docs/STATIC_ANALYSIS.md`` (whose completeness rule ``C5`` checks
against this module, so the docs cannot silently drift from the code).

Families
--------
``P*``
    Purity dataflow: raw nondeterminism sources (wall clocks, entropy,
    environment reads, hash-order hazards, global writes) reachable
    from the declared sim-pure boundary.
``C*``
    Contract drift: structures that must stay in sync — cache-key
    fields, the fault catalog, the sweep event schema, the docs tables.
``F*``
    Fork safety: objects shipped into worker processes must be
    picklable by construction and must not smuggle live state.
``W*``
    Waiver hygiene: suppressions must stay justified and alive.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

__all__ = [
    "CLOCK_SANCTUARY_MODULES",
    "ENTROPY_SANCTUARY_MODULES",
    "OBS_PLANE_MODULES",
    "PURITY_ROOTS",
    "RULES",
    "explain",
    "normalize_select",
]

#: Rule id -> one-line summary (``--list-rules``, SARIF shortDescription).
RULES: Dict[str, str] = {
    "P1": "wall-clock read reachable from the sim-pure boundary",
    "P2": "unseeded entropy source reachable from the sim-pure boundary",
    "P3": "environment read reachable from the sim-pure boundary",
    "P4": "module global written from sim-pure code",
    "P5": "unordered iteration or unsorted json.dumps feeding a content hash",
    "C1": "CellSpec field missing from the content-address payload",
    "C2": "FaultSpec subclass not registered in the FAULT_TYPES catalog",
    "C3": "cataloged fault kind never exercised by a chaos fault class",
    "C4": "sweep event kind drifted from the schema validator",
    "C5": "documentation table out of sync with the code registry",
    "F1": "callable submitted to a worker pool is not picklable by construction",
    "F2": "worker submission smuggles an open handle, lock, or RNG state",
    "W1": "stale or unjustified analyzer waiver",
}

#: Long-form explanations (``--explain``), one paragraph per rule.
_EXPLANATIONS: Dict[str, str] = {
    "P1": (
        "Every run must be a pure function of (config, seed); a wall-clock\n"
        "read (time.time/monotonic/perf_counter, datetime.now, ...) inside\n"
        "code reachable from the engine's event loop or execute_cell makes\n"
        "two identical runs diverge. The analyzer propagates taint over the\n"
        "whole-program call graph, so a clock buried three calls deep is\n"
        "still found and reported with its call chain. The sanctioned\n"
        "escape hatch is repro.obs.probes (host_wallclock/host_epoch):\n"
        "injectable, observational clocks that never feed back into\n"
        "scheduling."
    ),
    "P2": (
        "Unseeded entropy (module-level random, numpy.random, os.urandom,\n"
        "uuid.uuid1/uuid4, secrets) reachable from the sim-pure boundary\n"
        "breaks replayability. All randomness must flow through the seeded\n"
        "RngRegistry streams in repro.simcore.rng, which derive every draw\n"
        "from the experiment seed."
    ),
    "P3": (
        "os.environ / os.getenv reads reachable from the sim-pure boundary\n"
        "tie results to ambient machine state that the content address\n"
        "cannot see: two hosts produce different outputs for the same\n"
        "run_id, silently corrupting the cache and the ledger. Plumb the\n"
        "value through ExperimentConfig (hashed) or waive the line with a\n"
        "rationale if it is genuinely out-of-band (test hooks)."
    ),
    "P4": (
        "Writing a module-level global from sim-reachable code (a `global`\n"
        "statement with assignment) shares state between runs in one\n"
        "process: run N's result depends on whether run N-1 happened.\n"
        "Keep all mutable state on per-run objects."
    ),
    "P5": (
        "A function that computes a content hash (hashlib, or the ledger's\n"
        "config_fingerprint) must not fold in unordered iteration or\n"
        "json.dumps(...) without sort_keys=True: dict/set order is an\n"
        "accident of insertion history and hash seeding, so the 'same'\n"
        "payload can produce different digests — cache misses at best,\n"
        "cross-experiment collisions at worst."
    ),
    "C1": (
        "CellSpec.config_payload() is the cache key: the run_id hashes it.\n"
        "Every CellSpec field must appear in the payload (or be explicitly\n"
        "marked `# analyzer: hash-exempt -- <why>` for presentation-only\n"
        "fields, or be the seed, which is hashed alongside). PR 4's\n"
        "changelog records exactly this bug: the old memoizer key dropped\n"
        "the simulation horizon, so two different experiments collided in\n"
        "the cache. This rule makes that class of drift a lint failure."
    ),
    "C2": (
        "Every concrete FaultSpec subclass must declare a unique `kind`\n"
        "ClassVar and be registered in FAULT_TYPES. An unregistered spec\n"
        "serializes into a payload that fault_from_dict cannot rebuild, so\n"
        "a faulted cell's content address stops round-tripping through the\n"
        "ledger."
    ),
    "C3": (
        "Every kind in FAULT_TYPES should be constructed by at least one\n"
        "builder in repro.faults.catalog: an un-exercised fault type has no\n"
        "chaos-sweep coverage and no recovery-metric story, so regressions\n"
        "in it ship silently."
    ),
    "C4": (
        "The sweep event vocabulary lives in repro.obs.sweep\n"
        "(_REQUIRED_BY_KIND). Emitting a kind the schema does not know, or\n"
        "keeping a schema kind nothing emits, means validate_events_file\n"
        "and the dashboards disagree with the executors about what a sweep\n"
        "log contains. Emit sites are resolved statically, including\n"
        "**-expanded kwargs from dict-literal helpers, and checked against\n"
        "each kind's required fields."
    ),
    "C5": (
        "Tables that mirror a code registry (the rule index in\n"
        "docs/STATIC_ANALYSIS.md, the event-kind table in\n"
        "docs/OBSERVABILITY.md) must mention every registered id. The\n"
        "reproducibility literature's dominant failure mode is silent\n"
        "doc/model drift; this rule makes the docs part of the build."
    ),
    "F1": (
        "Callables handed to ProcessPoolExecutor.submit/map or\n"
        "multiprocessing.Process(target=...) must be module-level functions\n"
        "(or functools.partial over one): lambdas, nested functions, and\n"
        "bound methods of local objects either fail to pickle outright or\n"
        "drag their enclosing state into the worker."
    ),
    "F2": (
        "Arguments shipped to a worker must not smuggle live state: open\n"
        "file handles, threading locks/conditions/events, or random.Random\n"
        "instances. Handles and locks do not survive the pickle boundary;\n"
        "RNG state smuggled around the seeded registry makes the worker's\n"
        "draws depend on parent-process history."
    ),
    "W1": (
        "A waiver (`# analyzer: allow=P1 -- rationale`) must carry a\n"
        "rationale and must still match a live finding on its line. A\n"
        "stale waiver is worse than none: it documents a hazard that no\n"
        "longer exists and will silently swallow the next, different\n"
        "finding on that line. Delete waivers when the code they excuse\n"
        "goes away."
    ),
}

#: The declared sim-pure boundary: everything statically reachable from
#: these functions must be free of raw nondeterminism sources.
#: ``module:*`` means every function and method in the module.
PURITY_ROOTS = (
    "repro.simcore.engine:*",
    "repro.experiments.executor:execute_cell",
)

#: The injectable-clock home: the one module allowed to read host
#: clocks directly.  Calls *to* its wrappers are sanctioned (they are
#: observational and injectable); raw reads anywhere else are not.
CLOCK_SANCTUARY_MODULES = frozenset({"repro.obs.probes"})

#: The seeded-randomness home (mirrors simlint R1's allowlist).
ENTROPY_SANCTUARY_MODULES = frozenset({"repro.simcore.rng"})

#: The out-of-band observability plane: impure by design (resource
#: metering, epoch timestamps), verified out-of-band by the double-run
#: identity tests — raw sources inside these modules are sanctioned.
OBS_PLANE_MODULES = frozenset({"repro.obs.probes", "repro.obs.sweep"})


def explain(rule: str) -> Optional[str]:
    """Long-form explanation for ``rule`` (``--explain``), or ``None``."""
    rule = rule.strip().upper()
    if rule not in RULES:
        return None
    return f"{rule}: {RULES[rule]}\n\n{_EXPLANATIONS[rule]}"


def normalize_select(select: Optional[Iterable[str]]) -> Set[str]:
    """Validate a ``--select`` rule subset; default is every rule."""
    if select is None:
        return set(RULES)
    chosen = {s.strip().upper() for s in select if s.strip()}
    unknown = chosen - set(RULES)
    if unknown:
        raise ValueError(f"unknown analyzer rule(s): {', '.join(sorted(unknown))}")
    return chosen
