"""Contract-drift checks: structures that must stay in sync, checked.

Each check cross-references two places in the tree that encode the same
fact and fails when they disagree:

``C1``
    :class:`~repro.experiments.plan.CellSpec`'s dataclass fields vs the
    dict keys its ``config_payload`` method assembles.  The payload is
    what ``run_id`` hashes — a field missing from it means two
    different experiments share a content address (PR 4's horizon bug).
    Presentation-only fields opt out explicitly with a line-scoped
    ``# analyzer: hash-exempt -- <why>`` marker.
``C2``
    Concrete ``FaultSpec`` subclasses anywhere in the tree vs the
    ``FAULT_TYPES`` registry: every subclass must declare a string
    ``kind`` and be registered under it, and kinds must be unique.
``C3``
    ``FAULT_TYPES`` vs :mod:`repro.faults.catalog`: every registered
    kind should be constructed by at least one chaos fault class.
``C4``
    Sweep-event emit sites vs ``_REQUIRED_BY_KIND`` in
    :mod:`repro.obs.sweep`: every emitted kind must be in the schema
    (with its required fields present at the site, ``**helper()``
    expansions included), and every schema kind must be emitted
    somewhere in ``src``.
``C5``
    Registries vs their documentation tables: every event kind in the
    docs/OBSERVABILITY.md schema table, every analyzer + simlint rule
    id in the docs/STATIC_ANALYSIS.md rule index.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.devtools.analyzer.facts import ModuleFacts
from repro.devtools.analyzer.findings import Finding
from repro.devtools.analyzer.graph import ProgramGraph

__all__ = ["contract_findings"]

_PLAN_MODULE = "repro.experiments.plan"
_SPEC_MODULE = "repro.faults.spec"
_CATALOG_MODULE = "repro.faults.catalog"
_SWEEP_MODULE = "repro.obs.sweep"

#: CellSpec fields hashed outside config_payload (the seed pairs with
#: the payload in ``run_id_for(payload, seed)``).
_HASHED_SEPARATELY = frozenset({"seed"})


def _cellspec_findings(graph: ProgramGraph) -> List[Finding]:
    entry = graph.classes.get(f"{_PLAN_MODULE}:CellSpec")
    if entry is None:
        return []
    mod, cls = entry
    payload_fn = graph.functions.get(f"{_PLAN_MODULE}:CellSpec.config_payload")
    if payload_fn is None:
        return [
            Finding(
                rule="C1",
                path=mod.path,
                line=cls.line,
                col=1,
                message="CellSpec has no config_payload() method to hash",
                detail="config_payload:missing",
            )
        ]
    payload_keys = set(payload_fn[1].dict_keys)
    findings: List[Finding] = []
    for name, line, exempt in cls.fields:
        if name in _HASHED_SEPARATELY or exempt:
            continue
        if name not in payload_keys:
            findings.append(
                Finding(
                    rule="C1",
                    path=mod.path,
                    line=line,
                    col=1,
                    message=(
                        f"CellSpec.{name} is not part of the content-address "
                        f"payload: two cells differing only in {name!r} would "
                        f"collide in the cache (mark `# analyzer: hash-exempt "
                        f"-- <why>` if presentation-only)"
                    ),
                    detail=f"field:{name}",
                )
            )
    return findings


def _fault_registry(graph: ProgramGraph) -> Tuple[Optional[ModuleFacts], Set[str]]:
    """The FAULT_TYPES registration tuple: resolved class keys."""
    spec_mod = graph.modules.get(_SPEC_MODULE)
    if spec_mod is None:
        return None, set()
    registered: Set[str] = set()
    for name in spec_mod.registry_tuples.get("FAULT_TYPES", []):
        key = graph.resolve_class(spec_mod, name)
        registered.add(key if key is not None else name)
    return spec_mod, registered


def _fault_findings(graph: ProgramGraph) -> List[Finding]:
    spec_mod, registered = _fault_registry(graph)
    if spec_mod is None:
        return []
    base_key = f"{_SPEC_MODULE}:FaultSpec"
    if base_key not in graph.classes:
        return []
    findings: List[Finding] = []
    kinds: Dict[str, str] = {}
    for sub_key in graph.subclasses_of(base_key):
        mod, cls = graph.classes[sub_key]
        if not mod.module.startswith("repro."):
            continue  # test doubles in tests/ are not production specs
        if cls.kind_const is None:
            findings.append(
                Finding(
                    rule="C2",
                    path=mod.path,
                    line=cls.line,
                    col=1,
                    message=(
                        f"FaultSpec subclass {cls.name} declares no string "
                        f"`kind` ClassVar: it would serialize under its "
                        f"parent's kind and fail to round-trip"
                    ),
                    detail=f"class:{cls.name}:no-kind",
                )
            )
            continue
        other = kinds.get(cls.kind_const)
        if other is not None:
            findings.append(
                Finding(
                    rule="C2",
                    path=mod.path,
                    line=cls.kind_line or cls.line,
                    col=1,
                    message=(
                        f"FaultSpec kind {cls.kind_const!r} is declared by both "
                        f"{other} and {cls.name}: payload round-trips are "
                        f"ambiguous"
                    ),
                    detail=f"kind:{cls.kind_const}:duplicate",
                )
            )
        kinds[cls.kind_const] = cls.name
        if sub_key not in registered:
            findings.append(
                Finding(
                    rule="C2",
                    path=mod.path,
                    line=cls.line,
                    col=1,
                    message=(
                        f"FaultSpec subclass {cls.name} (kind "
                        f"{cls.kind_const!r}) is not registered in FAULT_TYPES: "
                        f"fault_from_dict cannot rebuild its payloads, so "
                        f"faulted cells stop round-tripping"
                    ),
                    detail=f"class:{cls.name}:unregistered",
                )
            )
    # C3: every registered kind is exercised by the chaos catalog.
    catalog_mod = graph.modules.get(_CATALOG_MODULE)
    if catalog_mod is not None:
        constructed: Set[str] = set()
        for fn in catalog_mod.functions.values():
            for call in fn.calls:
                leaf = call.rsplit(".", 1)[-1]
                key = graph.resolve_class(catalog_mod, leaf)
                if key is not None and key in graph.subclasses_of(base_key):
                    constructed.add(key)
        for sub_key in sorted(registered):
            if ":" not in sub_key:
                continue  # unresolved registry entry; C2 covers it
            if sub_key not in constructed:
                mod, cls = graph.classes.get(sub_key, (spec_mod, None))
                if cls is None:
                    continue
                findings.append(
                    Finding(
                        rule="C3",
                        path=mod.path,
                        line=cls.line,
                        col=1,
                        message=(
                            f"fault kind {cls.kind_const!r} ({cls.name}) is "
                            f"never constructed by any chaos fault class in "
                            f"{_CATALOG_MODULE}: no sweep coverage"
                        ),
                        detail=f"kind:{cls.kind_const}:uncataloged",
                    )
                )
    return findings


def _resolve_kind(
    graph: ProgramGraph, mod: ModuleFacts, kind_expr: str
) -> Optional[str]:
    """An emit site's first argument -> the event-kind string."""
    if kind_expr.startswith("str:"):
        return kind_expr[4:]
    leaf = kind_expr.rsplit(".", 1)[-1]
    # Resolve through the emitting module's imports to the constant.
    target = mod.from_imports.get(leaf, "")
    owner = target.rsplit(".", 1)[0] if "." in target else None
    for candidate in (owner, _SWEEP_MODULE, mod.module):
        owner_mod = graph.modules.get(candidate) if candidate else None
        if owner_mod is not None and leaf in owner_mod.str_constants:
            return owner_mod.str_constants[leaf]
    return None


def _emit_fields(
    graph: ProgramGraph, mod: ModuleFacts, site: "object"
) -> Tuple[Set[str], bool]:
    """Statically visible kwargs at an emit site (+ completeness flag)."""
    kwargs: Set[str] = set(site.kwargs)  # type: ignore[attr-defined]
    complete = not site.unresolved_star  # type: ignore[attr-defined]
    for helper in site.star_calls:  # type: ignore[attr-defined]
        leaf = helper.rsplit(".", 1)[-1]
        helper_fn = None
        local = f"{mod.module}:{leaf}"
        if local in graph.functions:
            helper_fn = graph.functions[local][1]
        else:
            target = mod.from_imports.get(leaf)
            if target is not None:
                owner, _, name = target.rpartition(".")
                helper_fn = (
                    graph.functions.get(f"{owner}:{name}", (None, None))[1]
                )
        if helper_fn is not None and helper_fn.returns_dict_literal:
            kwargs.update(helper_fn.dict_keys)
        else:
            complete = False
    return kwargs, complete


def _sweep_findings(graph: ProgramGraph) -> List[Finding]:
    sweep_mod = graph.modules.get(_SWEEP_MODULE)
    if sweep_mod is None:
        return []
    schema_kinds: Set[str] = set()
    for key in sweep_mod.dict_constants.get("_REQUIRED_BY_KIND", []):
        if key.startswith("ref:"):
            const = sweep_mod.str_constants.get(key[4:])
            if const is not None:
                schema_kinds.add(const)
        else:
            schema_kinds.add(key)
    if not schema_kinds:
        return []
    findings: List[Finding] = []
    emitted: Set[str] = set()
    for mod in graph.modules.values():
        if not mod.module.startswith("repro."):
            continue  # emit sites in tests exercise, not define, the plane
        for site in mod.emits:
            kind = _resolve_kind(graph, mod, site.kind_expr)
            if kind is None:
                continue
            emitted.add(kind)
            if kind not in schema_kinds:
                findings.append(
                    Finding(
                        rule="C4",
                        path=mod.path,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"sweep event kind {kind!r} is emitted here but "
                            f"absent from _REQUIRED_BY_KIND in {_SWEEP_MODULE}: "
                            f"validate_events_file would reject the log"
                        ),
                        detail=f"kind:{kind}:unschema'd",
                    )
                )
    # Schema kinds nothing in src emits are dead vocabulary.
    sweep_line = 1
    for kind in sorted(schema_kinds - emitted):
        findings.append(
            Finding(
                rule="C4",
                path=sweep_mod.path,
                line=sweep_line,
                col=1,
                message=(
                    f"schema event kind {kind!r} is never emitted by any "
                    f"executor or worker: dead vocabulary, or a missing "
                    f"emit site"
                ),
                detail=f"kind:{kind}:unemitted",
            )
        )
    return findings


def _docs_findings(
    graph: ProgramGraph,
    docs: Mapping[str, str],
    analyzer_rules: Mapping[str, str],
    simlint_rules: Mapping[str, str],
) -> List[Finding]:
    """C5: registry ids must appear in their documentation tables."""
    findings: List[Finding] = []
    # Event kinds -> docs/OBSERVABILITY.md
    sweep_mod = graph.modules.get(_SWEEP_MODULE)
    obs_doc = next((p for p in docs if p.endswith("OBSERVABILITY.md")), None)
    if sweep_mod is not None and obs_doc is not None:
        text = docs[obs_doc]
        kinds = {
            (sweep_mod.str_constants.get(k[4:]) if k.startswith("ref:") else k)
            for k in sweep_mod.dict_constants.get("_REQUIRED_BY_KIND", [])
        }
        for kind in sorted(k for k in kinds if k):
            if kind not in text:
                findings.append(
                    Finding(
                        rule="C5",
                        path=obs_doc,
                        line=1,
                        col=1,
                        message=(
                            f"sweep event kind {kind!r} is in the schema but "
                            f"missing from the {obs_doc} event table"
                        ),
                        detail=f"doc:event:{kind}",
                    )
                )
    # Rule ids -> docs/STATIC_ANALYSIS.md
    sa_doc = next((p for p in docs if p.endswith("STATIC_ANALYSIS.md")), None)
    if sa_doc is not None:
        text = docs[sa_doc]
        for rule_id in sorted(set(analyzer_rules) | set(simlint_rules)):
            if f"| {rule_id} " not in text and f"`{rule_id}`" not in text:
                findings.append(
                    Finding(
                        rule="C5",
                        path=sa_doc,
                        line=1,
                        col=1,
                        message=(
                            f"rule {rule_id} is registered in code but missing "
                            f"from the {sa_doc} rule index"
                        ),
                        detail=f"doc:rule:{rule_id}",
                    )
                )
    return findings


def contract_findings(
    graph: ProgramGraph,
    docs: Optional[Mapping[str, str]] = None,
    analyzer_rules: Optional[Mapping[str, str]] = None,
    simlint_rules: Optional[Mapping[str, str]] = None,
) -> List[Finding]:
    """All C-family findings for the analyzed tree."""
    findings: List[Finding] = []
    findings.extend(_cellspec_findings(graph))
    findings.extend(_fault_findings(graph))
    findings.extend(_sweep_findings(graph))
    if docs:
        findings.extend(
            _docs_findings(graph, docs, analyzer_rules or {}, simlint_rules or {})
        )
    return findings
