"""SARIF 2.1.0 serialization for CI annotation and editor ingestion.

One run, one tool (``odr-analyze``), one result per finding.  The
shape follows the subset GitHub's code-scanning upload and the
``::error`` annotation bridge consume: rule metadata in
``tool.driver.rules``, physical locations with 1-based line/column,
and the call-chain evidence preserved in each result's ``codeFlows``
plus a ``properties.detail`` bag so :func:`findings_from_sarif` can
round-trip a report exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.devtools.analyzer.findings import Finding
from repro.devtools.analyzer.rules import RULES

__all__ = ["findings_from_sarif", "to_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "odr-analyze"


def to_sarif(findings: Sequence[Finding]) -> str:
    """Serialize findings as one SARIF 2.1.0 run."""
    used_rules = sorted({f.rule for f in findings} | set(RULES))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": RULES.get(rule_id, rule_id)},
        }
        for rule_id in used_rules
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(used_rules)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
            "properties": {"detail": finding.detail},
        }
        if finding.chain:
            result["codeFlows"] = [
                {
                    "threadFlows": [
                        {
                            "locations": [
                                {
                                    "location": {
                                        "message": {"text": hop},
                                        "physicalLocation": {
                                            "artifactLocation": {
                                                "uri": finding.path
                                            }
                                        },
                                    }
                                }
                                for hop in finding.chain
                            ]
                        }
                    ]
                }
            ]
        results.append(result)
    payload = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def findings_from_sarif(text: str) -> List[Finding]:
    """Rebuild findings from a SARIF document produced by :func:`to_sarif`."""
    payload: Mapping[str, Any] = json.loads(text)
    findings: List[Finding] = []
    for run in payload.get("runs", []):
        for result in run.get("results", []):
            location = result["locations"][0]["physicalLocation"]
            chain: List[str] = []
            for flow in result.get("codeFlows", []):
                for thread in flow.get("threadFlows", []):
                    chain = [
                        loc["location"]["message"]["text"]
                        for loc in thread.get("locations", [])
                    ]
            findings.append(
                Finding(
                    rule=str(result["ruleId"]),
                    path=str(location["artifactLocation"]["uri"]),
                    line=int(location["region"]["startLine"]),
                    col=int(location["region"].get("startColumn", 1)),
                    message=str(result["message"]["text"]),
                    chain=tuple(chain),
                    detail=str(result.get("properties", {}).get("detail", "")),
                )
            )
    return findings
