"""Whole-program determinism analyzer for the ODR reproduction.

Where :mod:`repro.devtools.simlint` judges each file in isolation, this
package links the whole tree: per-module facts feed a call graph, a
purity dataflow walks the closure of the sim-pure boundary, contract
passes cross-check structures that must stay in sync (CellSpec fields
vs the run-id hash, FaultSpec subclasses vs their registry and catalog,
sweep-event kinds vs the schema and docs), and a fork-safety pass vets
everything handed to worker pools.  ``odr-sim analyze`` is the CLI.
"""

from repro.devtools.analyzer.driver import DEFAULT_DOCS, analyze, collect_sources
from repro.devtools.analyzer.findings import AnalyzerReport, Finding
from repro.devtools.analyzer.rules import (
    PURITY_ROOTS,
    RULES,
    explain,
    normalize_select,
)
from repro.devtools.analyzer.sarif import findings_from_sarif, to_sarif

__all__ = [
    "AnalyzerReport",
    "DEFAULT_DOCS",
    "Finding",
    "PURITY_ROOTS",
    "RULES",
    "analyze",
    "collect_sources",
    "explain",
    "findings_from_sarif",
    "normalize_select",
    "to_sarif",
]
