"""Fork-safety pass: what crosses a process boundary must be rebuildable.

``ParallelExecutor`` ships work to ``multiprocessing`` children by
pickling the callable and its arguments.  Two classes of hazard:

``F1``
    The callable itself is not picklable by construction — a lambda, a
    nested/local function, or a bound method of an unresolvable object.
    These fail at submit time on spawn-start platforms (macOS, Windows)
    while silently working under fork, which is exactly the kind of
    environment-dependent behavior the reproduction forbids.
``F2``
    An argument (or ``partial`` binding) smuggles a live handle across
    the boundary: an open file, a lock/condition/event, or an RNG whose
    state forks with the process.  Even when these *pickle*, the child's
    copy shares nothing with the parent — RNG streams duplicate, locks
    deadlock nobody — so the rule is rebuild-in-child, never smuggle.
"""

from __future__ import annotations

from typing import List, Optional

from repro.devtools.analyzer.facts import SMUGGLED_FACTORIES, ModuleFacts
from repro.devtools.analyzer.findings import Finding
from repro.devtools.analyzer.graph import ProgramGraph

__all__ = ["fork_safety_findings"]


def _resolve_callee(
    graph: ProgramGraph, mod: ModuleFacts, callee: str
) -> Optional[str]:
    """Resolve a submit-site callee to a module-level FunctionId."""
    if "." in callee:
        head, _, rest = callee.partition(".")
        target_mod = mod.imports.get(head)
        if target_mod and f"{target_mod}:{rest}" in graph.functions:
            return f"{target_mod}:{rest}"
        return None
    local = f"{mod.module}:{callee}"
    if local in graph.functions:
        return local
    target = mod.from_imports.get(callee)
    if target is not None:
        owner, _, leaf = target.rpartition(".")
        fid = f"{owner}:{leaf}"
        if fid in graph.functions:
            return fid
    return None


def _is_module_level(graph: ProgramGraph, fid: str) -> bool:
    qualname = fid.rsplit(":", 1)[1]
    return "." not in qualname


def fork_safety_findings(graph: ProgramGraph) -> List[Finding]:
    findings: List[Finding] = []
    for mod in graph.modules.values():
        for site in mod.submits:
            callee = site.callee
            is_partial = callee.startswith("partial:")
            inner = callee[len("partial:"):] if is_partial else callee
            # F1: the callable must be a module-level def (or a partial
            # over one).  Lambdas and call-results are out.
            if inner == "<lambda>":
                findings.append(
                    Finding(
                        rule="F1",
                        path=mod.path,
                        line=site.line,
                        col=site.col,
                        message=(
                            f"lambda handed to {site.via}(): lambdas do not "
                            f"pickle, so this breaks under spawn-start "
                            f"multiprocessing"
                        ),
                        detail=f"{site.via}:lambda",
                    )
                )
                continue
            if inner in ("?", "partial:?") or inner.startswith("call:"):
                # A dynamically produced callable we cannot resolve; only
                # flag when it is plainly a closure factory result.
                continue
            resolved = _resolve_callee(graph, mod, inner)
            if inner and not inner.startswith("self.") and "." not in inner:
                if resolved is None:
                    local_nested = any(
                        q.endswith(f".{inner}") or q.startswith(f"{inner}.<locals>")
                        for q in mod.functions
                        if "." in q
                    )
                    if local_nested:
                        findings.append(
                            Finding(
                                rule="F1",
                                path=mod.path,
                                line=site.line,
                                col=site.col,
                                message=(
                                    f"{inner!r} handed to {site.via}() is not a "
                                    f"module-level function: nested defs do "
                                    f"not pickle under spawn"
                                ),
                                detail=f"{site.via}:{inner}",
                            )
                        )
                elif not _is_module_level(graph, resolved):
                    findings.append(
                        Finding(
                            rule="F1",
                            path=mod.path,
                            line=site.line,
                            col=site.col,
                            message=(
                                f"{inner!r} handed to {site.via}() resolves to "
                                f"a method, not a module-level function: "
                                f"bound methods drag their instance across "
                                f"the fork"
                            ),
                            detail=f"{site.via}:{inner}:method",
                        )
                    )
            # F2: smuggled handles in the argument list.  Arguments are
            # recorded as dotted expressions; a constructor call of a
            # known handle factory shows up as ``call:<factory>``.
            for arg in site.args:
                if not arg.startswith("call:"):
                    continue
                factory = arg[len("call:"):]
                noun = SMUGGLED_FACTORIES.get(factory)
                if noun is None:
                    leaf = factory.rsplit(".", 1)[-1]
                    noun = SMUGGLED_FACTORIES.get(leaf)
                if noun is not None:
                    findings.append(
                        Finding(
                            rule="F2",
                            path=mod.path,
                            line=site.line,
                            col=site.col,
                            message=(
                                f"{noun} passed across the process boundary "
                                f"via {site.via}(): rebuild it inside the "
                                f"child instead of smuggling the parent's"
                            ),
                            detail=f"{site.via}:smuggle:{factory}",
                        )
                    )
    return findings
