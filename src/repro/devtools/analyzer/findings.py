"""Finding and report types shared by every analyzer pass."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["AnalyzerReport", "Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``chain`` carries the purity passes' evidence: the call path from a
    sim-pure root to the tainted line, outermost first.  ``detail`` is
    a machine-readable discriminator (taint kind, drifted field name)
    that baselines fingerprint on, so findings survive line renumbering.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    chain: Tuple[str, ...] = ()
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        if self.detail:
            payload["detail"] = self.detail
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            message=str(payload["message"]),
            chain=tuple(payload.get("chain", ())),
            detail=str(payload.get("detail", "")),
        )

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.chain:
            text += "\n    via " + " -> ".join(self.chain)
        return text

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


@dataclass
class AnalyzerReport:
    """Aggregate result of one ``analyze`` invocation."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    #: Findings silenced by a line-scoped waiver (count per rule).
    waived: Dict[str, int] = field(default_factory=dict)
    #: Findings silenced by the suppression baseline (count per rule).
    baselined: Dict[str, int] = field(default_factory=dict)
    #: Baseline entries that matched nothing (path kept for pruning);
    #: entries for deleted files land here rather than erroring.
    stale_baseline: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-file-hash cache statistics for this run.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Wall seconds the whole analysis took (parse + passes).
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "elapsed_s": round(self.elapsed_s, 3),
                "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
                "counts": self.counts(),
                "waived": dict(sorted(self.waived.items())),
                "baselined": dict(sorted(self.baselined.items())),
                "stale_baseline": self.stale_baseline,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def summary_line(self) -> str:
        counts = ", ".join(f"{r}: {n}" for r, n in sorted(self.counts().items()))
        silenced = sum(self.waived.values()) + sum(self.baselined.values())
        text = (
            f"analyze: {len(self.findings)} finding(s) in "
            f"{self.files_scanned} file(s)"
        )
        if counts:
            text += f"  [{counts}]"
        if silenced:
            text += f"  ({silenced} suppressed)"
        if self.stale_baseline:
            text += f"  ({len(self.stale_baseline)} stale baseline entr(y/ies))"
        return text
