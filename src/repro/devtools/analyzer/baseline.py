"""Suppression baseline: adopt-now, ratchet-later debt tracking.

The baseline is a checked-in JSON file of finding *fingerprints* — the
``(rule, path, detail-or-message)`` triple, deliberately **without line
numbers** so unrelated edits above a finding do not invalidate it.  At
analyze time every current finding whose fingerprint appears in the
baseline is silenced (counted, not reported); baseline entries that
match nothing (the finding was fixed, or its whole file deleted) are
returned as *stale* so ``--write-baseline`` can prune them — stale
entries are informational, never fatal, so deleting a file does not
break CI.

Stale inline *waivers* are the opposite: a ``# analyzer: allow=P1``
comment that no longer suppresses anything is a ``W1`` finding (fatal),
because dead waivers are how real regressions sneak back in under an
old rationale.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.analyzer.facts import ModuleFacts
from repro.devtools.analyzer.findings import Finding

__all__ = [
    "apply_baseline",
    "apply_waivers",
    "baseline_entry",
    "load_baseline",
    "waiver_findings",
    "write_baseline_payload",
]

_BASELINE_VERSION = 1


def baseline_entry(finding: Finding) -> Dict[str, str]:
    """The stable fingerprint a finding is baselined under."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "key": finding.detail or finding.message,
    }


def _fingerprint(entry: Mapping[str, Any]) -> Tuple[str, str, str]:
    return (str(entry["rule"]), str(entry["path"]), str(entry["key"]))


def load_baseline(text: str) -> List[Dict[str, Any]]:
    """Parse a baseline file's text into its entry list.

    Raises ``ValueError`` on malformed payloads — a corrupt baseline
    must fail loudly, not silently suppress nothing.
    """
    payload = json.loads(text)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("baseline file must be an object with an 'entries' list")
    entries = payload["entries"]
    if not isinstance(entries, list):
        raise ValueError("baseline 'entries' must be a list")
    out: List[Dict[str, Any]] = []
    for entry in entries:
        if (
            not isinstance(entry, dict)
            or not all(k in entry for k in ("rule", "path", "key"))
        ):
            raise ValueError(f"malformed baseline entry: {entry!r}")
        out.append({"rule": entry["rule"], "path": entry["path"], "key": entry["key"]})
    return out


def write_baseline_payload(findings: Sequence[Finding]) -> str:
    """Serialize current findings as a fresh baseline file."""
    entries = sorted(
        (baseline_entry(f) for f in findings),
        key=lambda e: (e["path"], e["rule"], e["key"]),
    )
    # Deduplicate identical fingerprints (two findings may share one).
    unique: List[Dict[str, str]] = []
    seen: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        fp = _fingerprint(entry)
        if fp not in seen:
            seen.add(fp)
            unique.append(entry)
    return json.dumps(
        {"version": _BASELINE_VERSION, "entries": unique}, indent=2, sort_keys=True
    ) + "\n"


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[Mapping[str, Any]]
) -> Tuple[List[Finding], Dict[str, int], List[Dict[str, Any]]]:
    """Split findings into (kept, baselined-counts, stale-entries)."""
    index: Set[Tuple[str, str, str]] = {_fingerprint(e) for e in entries}
    matched: Set[Tuple[str, str, str]] = set()
    kept: List[Finding] = []
    baselined: Dict[str, int] = {}
    for finding in findings:
        fp = _fingerprint(baseline_entry(finding))
        if fp in index:
            matched.add(fp)
            baselined[finding.rule] = baselined.get(finding.rule, 0) + 1
        else:
            kept.append(finding)
    stale = [
        {"rule": fp[0], "path": fp[1], "key": fp[2]}
        for fp in sorted(index - matched)
    ]
    return kept, baselined, stale


def apply_waivers(
    findings: Sequence[Finding], modules: Iterable[ModuleFacts]
) -> Tuple[List[Finding], Dict[str, int], Dict[Tuple[str, int], Set[str]]]:
    """Silence findings covered by a same-line inline waiver.

    Returns (kept findings, waived counts per rule, used waiver slots)
    where a slot is ``(path, line)`` mapped to the rule ids it actually
    suppressed — the input for stale-waiver detection.
    """
    waiver_index: Dict[Tuple[str, int], Set[str]] = {}
    for mod in modules:
        for waiver in mod.waivers:
            if not waiver.rationale:
                continue  # rationale-less waivers suppress nothing (W1 fires)
            waiver_index.setdefault((mod.path, waiver.line), set()).update(
                waiver.rules
            )
    kept: List[Finding] = []
    waived: Dict[str, int] = {}
    used: Dict[Tuple[str, int], Set[str]] = {}
    for finding in findings:
        slot = (finding.path, finding.line)
        rules = waiver_index.get(slot, set())
        if finding.rule in rules:
            waived[finding.rule] = waived.get(finding.rule, 0) + 1
            used.setdefault(slot, set()).add(finding.rule)
        else:
            kept.append(finding)
    return kept, waived, used


def waiver_findings(
    modules: Iterable[ModuleFacts],
    used: Mapping[Tuple[str, int], Set[str]],
    known_rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """W1: waivers that are malformed, unknown, or suppress nothing."""
    findings: List[Finding] = []
    for mod in modules:
        for waiver in mod.waivers:
            slot = (mod.path, waiver.line)
            if not waiver.rationale:
                findings.append(
                    Finding(
                        rule="W1",
                        path=mod.path,
                        line=waiver.line,
                        col=1,
                        message=(
                            "waiver has no rationale: write "
                            "`# analyzer: allow=<RULE> -- <why this is safe>`"
                        ),
                        detail="waiver:no-rationale",
                    )
                )
                continue
            for rule in waiver.rules:
                if known_rules is not None and rule not in known_rules:
                    findings.append(
                        Finding(
                            rule="W1",
                            path=mod.path,
                            line=waiver.line,
                            col=1,
                            message=f"waiver names unknown rule {rule!r}",
                            detail=f"waiver:unknown:{rule}",
                        )
                    )
                elif rule not in used.get(slot, set()):
                    findings.append(
                        Finding(
                            rule="W1",
                            path=mod.path,
                            line=waiver.line,
                            col=1,
                            message=(
                                f"stale waiver: allow={rule} suppresses "
                                f"nothing on this line — remove it so the "
                                f"rule can bite again"
                            ),
                            detail=f"waiver:stale:{rule}",
                        )
                    )
    return findings
