"""Purity dataflow: raw nondeterminism sources vs the sim-pure boundary.

The lattice is deliberately small — a function is **pure** until a raw
taint event (clock read, entropy draw, environment read, global write)
is observed in its body, and **impurity is a property of reachability**:
a tainted function only becomes a finding when the whole-program call
graph shows a path from a declared sim-pure root
(:data:`~repro.devtools.analyzer.rules.PURITY_ROOTS`) to it.  Code
outside the boundary (CLI rendering, dashboards, the analyzer itself)
may read clocks freely; code inside may not, however many calls deep
the read hides.

Sanctioned sources live in the sanctuary modules (the injectable-clock
home ``repro.obs.probes``, the seeded-RNG home ``repro.simcore.rng``,
and the out-of-band observability plane) — raw reads there are by
design and are *not* findings; calls into their wrappers from boundary
code are likewise sanctioned, because the wrappers are injectable and
observational.

``P5`` (hash-order hazards) is boundary-independent: a content hash
must be stable wherever it is computed, so any function that both
computes a digest and folds in unordered iteration or unsorted
``json.dumps`` is flagged, reachable or not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.devtools.analyzer.facts import MODULE_BODY
from repro.devtools.analyzer.findings import Finding
from repro.devtools.analyzer.graph import ProgramGraph
from repro.devtools.analyzer.rules import (
    CLOCK_SANCTUARY_MODULES,
    ENTROPY_SANCTUARY_MODULES,
    OBS_PLANE_MODULES,
    PURITY_ROOTS,
)

__all__ = ["purity_findings"]

#: Taint kind -> (rule, human noun).
_TAINT_RULES: Dict[str, Tuple[str, str]] = {
    "clock": ("P1", "wall-clock read"),
    "entropy": ("P2", "entropy source"),
    "env": ("P3", "environment read"),
    "global_write": ("P4", "module-global write"),
}

#: Call names (leaf) that mark a function as computing a content hash,
#: in addition to direct hashlib/hexdigest use recorded at extraction.
_FINGERPRINT_HELPERS = ("config_fingerprint", "run_id_for", "metrics_digest")


def _sanctioned(module: str, kind: str) -> bool:
    if module in OBS_PLANE_MODULES:
        return kind in ("clock", "env")
    if kind == "clock":
        return module in CLOCK_SANCTUARY_MODULES
    if kind == "entropy":
        return module in ENTROPY_SANCTUARY_MODULES
    return False


def _short_chain(chain: Tuple[str, ...], limit: int = 6) -> Tuple[str, ...]:
    if len(chain) <= limit:
        return chain
    return chain[:2] + ("...",) + chain[-(limit - 3):]


def purity_findings(
    graph: ProgramGraph, roots: Optional[Tuple[str, ...]] = None
) -> List[Finding]:
    """P1-P4 over the reachable closure, P5 everywhere."""
    roots = roots if roots is not None else PURITY_ROOTS
    reachable, parents = graph.reachable_from(list(roots))
    findings: List[Finding] = []

    for fid, (mod, fn) in graph.functions.items():
        in_boundary = fid in reachable
        # P1-P4: raw sources inside the boundary.
        if in_boundary:
            for taint in fn.taints:
                rule_noun = _TAINT_RULES.get(taint.kind)
                if rule_noun is None:
                    continue
                rule, noun = rule_noun
                if _sanctioned(mod.module, taint.kind):
                    continue
                chain = _short_chain(graph.chain(parents, fid))
                where = fn.qualname if fn.qualname != MODULE_BODY else "module body"
                findings.append(
                    Finding(
                        rule=rule,
                        path=mod.path,
                        line=taint.line,
                        col=taint.col,
                        message=(
                            f"{noun} {taint.detail} in {where}() is reachable "
                            f"from the sim-pure boundary; a run must be a pure "
                            f"function of (config, seed)"
                        ),
                        chain=chain,
                        detail=f"{taint.kind}:{taint.detail}",
                    )
                )
        # P5: hash-order hazards, boundary-independent.
        hash_context = any(t.kind == "hash_digest" for t in fn.taints) or any(
            call.rsplit(".", 1)[-1] in _FINGERPRINT_HELPERS for call in fn.calls
        )
        if hash_context:
            for taint in fn.taints:
                if taint.kind not in ("dumps_unsorted", "set_iter"):
                    continue
                findings.append(
                    Finding(
                        rule="P5",
                        path=mod.path,
                        line=taint.line,
                        col=taint.col,
                        message=(
                            f"{taint.detail} in hash-computing {fn.qualname}(): "
                            f"dict/set order is unstable, so the digest is not "
                            f"a function of the payload"
                        ),
                        detail=f"{taint.kind}",
                    )
                )
    return findings
