"""The analyze driver: walk, extract (cached), link, run every pass.

The pipeline is strictly phased:

1. **Walk** the requested paths for ``.py`` files (skipping caches and
   hidden directories), read each source — an ``overlay`` mapping can
   replace or add sources without touching disk, which is how the
   negative-drift tests prove the contract rules fire.
2. **Extract** per-module facts, consulting the per-file-hash cache.
3. **Link** everything into one :class:`ProgramGraph`.
4. **Run passes**: purity (P1-P5), contracts (C1-C5), fork safety
   (F1-F2).
5. **Filter**: ``--select`` subset, line-scoped waivers (tracking which
   actually fired), suppression baseline, then W1 for waivers that
   suppressed nothing.

The driver is pure with respect to its inputs plus the filesystem reads
it performs — the analyzer holds itself to the standard it enforces.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.devtools.analyzer.baseline import (
    apply_baseline,
    apply_waivers,
    load_baseline,
    waiver_findings,
)
from repro.devtools.analyzer.cache import FactsCache
from repro.devtools.analyzer.contracts import contract_findings
from repro.devtools.analyzer.facts import (
    ModuleFacts,
    extract_module,
    module_name_for,
    source_sha,
)
from repro.devtools.analyzer.findings import AnalyzerReport, Finding
from repro.devtools.analyzer.forksafety import fork_safety_findings
from repro.devtools.analyzer.graph import ProgramGraph, build_graph
from repro.devtools.analyzer.purity import purity_findings
from repro.devtools.analyzer.rules import RULES, normalize_select

try:  # the C5 docs check cross-references simlint's rule registry
    from repro.devtools.simlint import RULES as SIMLINT_RULES
except ImportError:  # pragma: no cover - simlint is part of this package
    SIMLINT_RULES = {}

__all__ = ["analyze", "collect_sources", "DEFAULT_DOCS"]

DEFAULT_DOCS = ("docs/STATIC_ANALYSIS.md", "docs/OBSERVABILITY.md")

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache"}


def collect_sources(
    paths: Sequence[str], overlay: Optional[Mapping[str, str]] = None
) -> Dict[str, str]:
    """``path -> source`` for every ``.py`` under ``paths``.

    Overlay entries replace same-path disk content and add paths that
    do not exist on disk at all.
    """
    sources: Dict[str, str] = {}
    for root in paths:
        if os.path.isfile(root):
            if root.endswith(".py"):
                sources[root] = _read(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    path = os.path.join(dirpath, name)
                    sources[path] = _read(path)
    if overlay:
        for path, text in overlay.items():
            sources[path] = text
    return sources


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _extract_all(
    sources: Mapping[str, str], cache: FactsCache
) -> List[ModuleFacts]:
    modules: List[ModuleFacts] = []
    shas: Dict[str, str] = {}
    for path, source in sorted(sources.items()):
        sha = source_sha(source)
        shas[path] = sha
        cached = cache.get(sha)
        if cached is not None:
            # Same content may live at a new path after a rename.
            if cached.path != path:
                cached.path = path
                cached.module = module_name_for(path)
            modules.append(cached)
            continue
        facts = extract_module(source, path, module_name_for(path))
        cache.put(facts)
        modules.append(facts)
    cache.prune(shas)
    return modules


def _parse_error_findings(modules: Sequence[ModuleFacts]) -> List[Finding]:
    return [
        Finding(
            rule="E0",
            path=mod.path,
            line=1,
            col=1,
            message=f"file does not parse: {mod.parse_error}",
            detail="parse-error",
        )
        for mod in modules
        if mod.parse_error
    ]


def analyze(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
    baseline_text: Optional[str] = None,
    cache_path: Optional[str] = None,
    overlay: Optional[Mapping[str, str]] = None,
    docs: Optional[Mapping[str, str]] = None,
    docs_paths: Optional[Sequence[str]] = None,
    roots: Optional[Tuple[str, ...]] = None,
) -> AnalyzerReport:
    """Run the whole-program analysis and return its report.

    ``baseline_text`` is the *content* of a baseline file (the CLI reads
    it; tests pass literals).  ``docs`` maps doc path -> text for the C5
    check; when absent, ``docs_paths`` (default :data:`DEFAULT_DOCS`)
    are read from disk where they exist.
    """
    started = time.monotonic()  # simlint: disable=R2 -- timing the analyzer's own run, not sim state
    sources = collect_sources(paths, overlay)
    cache = FactsCache(cache_path)
    modules = _extract_all(sources, cache)
    cache.save()
    graph: ProgramGraph = build_graph(modules)

    if docs is None:
        doc_map: Dict[str, str] = {}
        for doc_path in docs_paths if docs_paths is not None else DEFAULT_DOCS:
            if os.path.exists(doc_path):
                doc_map[doc_path] = _read(doc_path)
        docs = doc_map

    findings: List[Finding] = []
    findings.extend(_parse_error_findings(modules))
    findings.extend(purity_findings(graph, roots))
    findings.extend(contract_findings(graph, docs, RULES, SIMLINT_RULES))
    findings.extend(fork_safety_findings(graph))

    if select is not None:
        selected = normalize_select(select)
        findings = [f for f in findings if f.rule in selected]

    findings, waived, used_waivers = apply_waivers(findings, modules)
    # Waiver hygiene only makes sense on a full-rule run: under --select,
    # a waiver for an unselected rule would look spuriously stale.
    if select is None:
        findings.extend(waiver_findings(modules, used_waivers, set(RULES)))

    baselined: Dict[str, int] = {}
    stale: List[Dict[str, object]] = []
    if baseline_text is not None:
        entries = load_baseline(baseline_text)
        findings, baselined, stale = apply_baseline(findings, entries)

    findings.sort(key=lambda f: f.sort_key())
    return AnalyzerReport(
        findings=tuple(findings),
        files_scanned=len(sources),
        waived=waived,
        baselined=baselined,
        stale_baseline=list(stale),
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        elapsed_s=time.monotonic() - started,  # simlint: disable=R2 -- self-timing
    )
