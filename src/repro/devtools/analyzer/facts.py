"""Per-module fact extraction: one AST walk, everything the passes need.

The analyzer never re-parses a file twice: :func:`extract_module` walks
a module's AST once and distills it into a plain-data
:class:`ModuleFacts` — functions with their taint events and outgoing
call references, classes with bases/methods/field lists, import tables,
string constants, sweep-event emit sites, pool submission sites, and
waiver comments.  Everything is JSON-serializable, which is what makes
the per-file-hash cache possible: a warm run loads facts for unchanged
files straight from disk and only the whole-program passes
(:mod:`.graph`, :mod:`.purity`, :mod:`.contracts`) run fresh.

Taint *events* recorded here are mechanical observations ("calls
``time.time``", "iterates a set expression", "writes a global"); the
purity pass decides which of them are findings, for which rule, and
whether the function is reachable from the sim-pure boundary.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "ClassFacts",
    "EmitSite",
    "FunctionFacts",
    "ModuleFacts",
    "SubmitSite",
    "TaintEvent",
    "Waiver",
    "extract_module",
    "facts_from_payload",
    "module_name_for",
    "source_sha",
]

MODULE_BODY = "<module>"

#: ``time`` attributes that read a host clock.
CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Entropy sources: ``module attribute`` pairs (None = any attribute).
ENTROPY_MODULES = frozenset({"random", "numpy.random", "secrets"})
UUID_ENTROPY = frozenset({"uuid1", "uuid4"})

#: Callables whose return value is a live OS/threading object (F2).
SMUGGLED_FACTORIES = {
    "open": "an open file handle",
    "threading.Lock": "a threading lock",
    "threading.RLock": "a threading lock",
    "threading.Condition": "a threading condition",
    "threading.Event": "a threading event",
    "threading.Semaphore": "a threading semaphore",
    "random.Random": "a random.Random instance",
    "random.SystemRandom": "a random.SystemRandom instance",
}

_WAIVER_RE = re.compile(
    r"#\s*analyzer:\s*allow=([A-Za-z0-9,\s]+?)(?:\s*--\s*(.*?))?\s*(?:#|$)"
)
_HASH_EXEMPT_RE = re.compile(r"#\s*analyzer:\s*hash-exempt(?:\s*--\s*(.*?))?\s*(?:#|$)")


@dataclass
class TaintEvent:
    """One mechanical impurity observation inside a function body."""

    #: ``clock`` | ``entropy`` | ``env`` | ``global_write`` |
    #: ``set_iter`` | ``dumps_unsorted`` | ``hash_digest``
    kind: str
    line: int
    col: int
    detail: str


@dataclass
class EmitSite:
    """One ``bus.emit(KIND, ...)`` / ``emit_cell_event(KIND, ...)`` call."""

    #: The first argument as written (``sweepbus.CELL_STARTED``, a bare
    #: name, or a string literal prefixed ``str:``).
    kind_expr: str
    #: Keyword names passed explicitly at the site.
    kwargs: List[str]
    #: Dotted names of ``**expanded`` call expressions (e.g.
    #: ``_cell_fields``) — resolved against dict-literal helpers later.
    star_calls: List[str]
    #: True when a ``**expr`` could not be resolved to a helper call.
    unresolved_star: bool
    line: int
    col: int


@dataclass
class SubmitSite:
    """One callable handed to a worker pool / child process."""

    #: ``submit`` | ``map`` | ``Process`` | ``apply_async`` | ``initializer``
    via: str
    #: The callable expression as written (dotted name, or markers
    #: ``<lambda>`` / unresolvable ``?``).
    callee: str
    #: Argument expressions as dotted names (``?`` when complex).
    args: List[str]
    line: int
    col: int


@dataclass
class Waiver:
    """One line-scoped ``# analyzer: allow=...`` comment."""

    line: int
    rules: List[str]
    rationale: str


@dataclass
class FunctionFacts:
    """One function or method, flattened for the whole-program passes."""

    qualname: str
    line: int
    is_generator: bool
    taints: List[TaintEvent] = field(default_factory=list)
    #: Outgoing call references, as written: ``foo``, ``self.run``,
    #: ``time.sleep``, ``pkg.mod.fn``.
    calls: List[str] = field(default_factory=list)
    #: Bare references to known-function names (callback registration).
    refs: List[str] = field(default_factory=list)
    #: Local variable -> class-name-as-written, from ``x = Cls(...)``
    #: assignments and parameter annotations.
    local_types: Dict[str, str] = field(default_factory=dict)
    #: String keys this function assembles into dict literals /
    #: subscript stores (contract passes read ``config_payload``'s).
    dict_keys: List[str] = field(default_factory=list)
    #: True when the function's body is a single ``return {literal}``
    #: (or assigns then returns it) — lets C4 expand ``**helper()``.
    returns_dict_literal: bool = False


@dataclass
class ClassFacts:
    """One class definition."""

    name: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: ``self.<attr> = Cls(...)`` assignments anywhere in the class.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Value of a ``kind: ClassVar[str] = "..."`` class attribute.
    kind_const: Optional[str] = None
    kind_line: int = 0
    #: Annotated dataclass-style fields: (name, line, hash_exempt).
    fields: List[Tuple[str, int, bool]] = field(default_factory=list)


@dataclass
class ModuleFacts:
    """Everything the whole-program passes need from one module."""

    module: str
    path: str
    sha: str
    imports: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    #: Module-level ``NAME = "string"`` constants.
    str_constants: Dict[str, str] = field(default_factory=dict)
    #: Module-level dict literals: name -> resolved string keys.
    dict_constants: Dict[str, List[str]] = field(default_factory=dict)
    #: Names registered into FAULT_TYPES-style tuples keyed by variable.
    registry_tuples: Dict[str, List[str]] = field(default_factory=dict)
    emits: List[EmitSite] = field(default_factory=list)
    submits: List[SubmitSite] = field(default_factory=list)
    waivers: List[Waiver] = field(default_factory=list)
    parse_error: Optional[str] = None

    def to_payload(self) -> Dict[str, Any]:
        return asdict(self)


def facts_from_payload(payload: Mapping[str, Any]) -> ModuleFacts:
    """Rebuild :class:`ModuleFacts` from its cached JSON form."""
    facts = ModuleFacts(
        module=payload["module"], path=payload["path"], sha=payload["sha"]
    )
    facts.imports = dict(payload.get("imports", {}))
    facts.from_imports = dict(payload.get("from_imports", {}))
    facts.str_constants = dict(payload.get("str_constants", {}))
    facts.dict_constants = {
        k: list(v) for k, v in payload.get("dict_constants", {}).items()
    }
    facts.registry_tuples = {
        k: list(v) for k, v in payload.get("registry_tuples", {}).items()
    }
    facts.parse_error = payload.get("parse_error")
    for name, fn in payload.get("functions", {}).items():
        facts.functions[name] = FunctionFacts(
            qualname=fn["qualname"],
            line=fn["line"],
            is_generator=fn["is_generator"],
            taints=[TaintEvent(**t) for t in fn.get("taints", [])],
            calls=list(fn.get("calls", [])),
            refs=list(fn.get("refs", [])),
            local_types=dict(fn.get("local_types", {})),
            dict_keys=list(fn.get("dict_keys", [])),
            returns_dict_literal=fn.get("returns_dict_literal", False),
        )
    for name, cls in payload.get("classes", {}).items():
        facts.classes[name] = ClassFacts(
            name=cls["name"],
            line=cls["line"],
            bases=list(cls.get("bases", [])),
            methods=list(cls.get("methods", [])),
            attr_types=dict(cls.get("attr_types", {})),
            kind_const=cls.get("kind_const"),
            kind_line=cls.get("kind_line", 0),
            fields=[tuple(f) for f in cls.get("fields", [])],  # type: ignore[misc]
        )
    facts.emits = [EmitSite(**e) for e in payload.get("emits", [])]
    facts.submits = [SubmitSite(**s) for s in payload.get("submits", [])]
    facts.waivers = [Waiver(**w) for w in payload.get("waivers", [])]
    return facts


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``; tests map to ``tests.<stem>``."""
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or [parts[0]]
    return ".".join(parts)


def _dotted(node: ast.expr) -> Optional[str]:
    """Render a Name/Attribute chain as a dotted string, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _parse_comments(source: str) -> Tuple[List[Waiver], Set[int]]:
    """Waiver comments and ``hash-exempt`` marker lines in ``source``.

    Real ``COMMENT`` tokens only — a waiver example quoted inside a
    docstring must not register as a live waiver.
    """
    waivers: List[Waiver] = []
    hash_exempt: Set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return waivers, hash_exempt
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        lineno = tok.start[0]
        match = _WAIVER_RE.search(tok.string)
        if match:
            rules = [r.strip().upper() for r in match.group(1).split(",") if r.strip()]
            waivers.append(
                Waiver(
                    line=lineno,
                    rules=rules,
                    rationale=(match.group(2) or "").strip(),
                )
            )
        if _HASH_EXEMPT_RE.search(tok.string):
            hash_exempt.add(lineno)
    return waivers, hash_exempt


class _Extractor(ast.NodeVisitor):
    def __init__(self, facts: ModuleFacts, hash_exempt: Set[int]):
        self.facts = facts
        self.hash_exempt = hash_exempt
        self._class_stack: List[ClassFacts] = []
        self._func_stack: List[FunctionFacts] = []
        self._ensure_function(MODULE_BODY, 1, False)

    # -- plumbing --------------------------------------------------------

    def _ensure_function(self, qualname: str, line: int, is_gen: bool) -> FunctionFacts:
        fn = self.facts.functions.get(qualname)
        if fn is None:
            fn = FunctionFacts(qualname=qualname, line=line, is_generator=is_gen)
            self.facts.functions[qualname] = fn
        return fn

    @property
    def _fn(self) -> FunctionFacts:
        return self._func_stack[-1] if self._func_stack else self.facts.functions[MODULE_BODY]

    def _taint(self, kind: str, node: ast.AST, detail: str) -> None:
        self._fn.taints.append(
            TaintEvent(
                kind=kind,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
            )
        )

    def _resolve_alias(self, dotted: str) -> str:
        """Map a written dotted name through the module's import tables."""
        head, _, rest = dotted.partition(".")
        if head in self.facts.from_imports:
            head = self.facts.from_imports[head]
        elif head in self.facts.imports:
            head = self.facts.imports[head]
        return head + ("." + rest if rest else "")

    # -- imports ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.facts.imports[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            if alias.asname:
                self.facts.imports[alias.asname] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        if node.level:  # relative import: anchor at this module's package
            pkg_parts = self.facts.module.split(".")
            pkg_parts = pkg_parts[: len(pkg_parts) - node.level]
            mod = ".".join(pkg_parts + ([mod] if mod else []))
        for alias in node.names:
            local = alias.asname or alias.name
            self.facts.from_imports[local] = f"{mod}.{alias.name}" if mod else alias.name
        self.generic_visit(node)

    # -- functions / classes ---------------------------------------------

    def _qualname(self, name: str) -> str:
        if self._class_stack:
            return f"{self._class_stack[-1].name}.{name}"
        return name

    def _visit_function(self, node: Any) -> None:
        qualname = self._qualname(node.name)
        is_gen = any(
            isinstance(child, (ast.Yield, ast.YieldFrom))
            for child in ast.walk(node)
            if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        )
        fn = self._ensure_function(qualname, node.lineno, is_gen)
        if self._class_stack:
            self._class_stack[-1].methods.append(node.name)
        # Parameter annotations seed local type inference.
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        ):
            if arg.annotation is not None:
                ann = _dotted(arg.annotation)
                if ann is None and isinstance(arg.annotation, ast.Constant):
                    ann = str(arg.annotation.value)
                if ann:
                    fn.local_types.setdefault(arg.arg, ann.strip('"'))
        # Dict-returning helper detection (for ** expansion in C4): the
        # helper either returns a dict literal directly or assembles one
        # in a local and returns it (its keys land in ``dict_keys``).
        fn.returns_dict_literal = any(
            isinstance(stmt, ast.Return)
            and isinstance(stmt.value, (ast.Dict, ast.Name))
            for stmt in node.body
        )
        self._func_stack.append(fn)
        for stmt in node.body:
            self.visit(stmt)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        cls = ClassFacts(name=node.name, line=node.lineno)
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                cls.bases.append(self._resolve_alias(dotted))
        self.facts.classes[node.name] = cls
        self._class_stack.append(cls)
        for stmt in node.body:
            # Dataclass-style annotated fields + the `kind` ClassVar.
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                ann_src = ast.dump(stmt.annotation)
                is_classvar = "ClassVar" in ann_src
                name = stmt.target.id
                if (
                    name == "kind"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    cls.kind_const = stmt.value.value
                    cls.kind_line = stmt.lineno
                elif not is_classvar and not name.startswith("_"):
                    cls.fields.append(
                        (name, stmt.lineno, stmt.lineno in self.hash_exempt)
                    )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id == "kind"
                        and isinstance(stmt.value, ast.Constant)
                        and isinstance(stmt.value.value, str)
                    ):
                        cls.kind_const = stmt.value.value
                        cls.kind_line = stmt.lineno
            self.visit(stmt)
        self._class_stack.pop()

    # -- assignments ------------------------------------------------------

    def _record_constructor_type(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        dotted = _dotted(value.func)
        if dotted is None:
            return
        resolved = self._resolve_alias(dotted)
        leaf = resolved.rsplit(".", 1)[-1]
        if not leaf or not leaf[0].isupper():
            return  # heuristics: constructors are CapWords
        if isinstance(target, ast.Name):
            self._fn.local_types[target.id] = resolved
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self._class_stack
        ):
            self._class_stack[-1].attr_types[target.attr] = resolved

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_constructor_type(target, node.value)
            # Module-level string constants and dict/tuple registries.
            if not self._func_stack and isinstance(target, ast.Name):
                self._record_module_constant(target.id, node.value)
            # dict literal assigned to a local: remember its keys.
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        self._fn.dict_keys.append(key.value)
            # payload["key"] = ... stores.
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                self._fn.dict_keys.append(target.slice.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_constructor_type(node.target, node.value)
            if not self._func_stack and isinstance(node.target, ast.Name):
                self._record_module_constant(node.target.id, node.value)
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        self._fn.dict_keys.append(key.value)
        self.generic_visit(node)

    def _record_module_constant(self, name: str, value: ast.expr) -> None:
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self.facts.str_constants[name] = value.value
        elif isinstance(value, ast.Dict):
            keys: List[str] = []
            for key in value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    keys.append(key.value)
                elif isinstance(key, ast.Name):
                    keys.append(f"ref:{key.id}")
            self.facts.dict_constants[name] = keys
            # Registry dicts built from comprehensions over a tuple of
            # classes: {cls.kind: cls for cls in (A, B, ...)}.
        elif isinstance(value, ast.DictComp):
            names = self._comp_tuple_names(value)
            if names:
                self.facts.registry_tuples[name] = names

    def _comp_tuple_names(self, comp: ast.DictComp) -> List[str]:
        names: List[str] = []
        for gen in comp.generators:
            if isinstance(gen.iter, (ast.Tuple, ast.List)):
                for elt in gen.iter.elts:
                    dotted = _dotted(elt)
                    if dotted:
                        names.append(self._resolve_alias(dotted))
        return names

    def visit_Global(self, node: ast.Global) -> None:
        if self._func_stack:
            self._taint(
                "global_write", node, f"global {', '.join(node.names)}"
            )
        self.generic_visit(node)

    # -- calls / taints ---------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        resolved = self._resolve_alias(dotted) if dotted else None
        if dotted:
            self._fn.calls.append(dotted)
        self._check_taint_call(node, resolved)
        self._check_emit(node, dotted, resolved)
        self._check_submit(node, dotted, resolved)
        self.generic_visit(node)

    def _check_taint_call(self, node: ast.Call, resolved: Optional[str]) -> None:
        if resolved is None:
            return
        head, _, attr = resolved.rpartition(".")
        if head == "time" and attr in CLOCK_ATTRS:
            self._taint("clock", node, f"time.{attr}()")
        elif attr in DATETIME_ATTRS and head in (
            "datetime",
            "datetime.datetime",
            "datetime.date",
        ):
            self._taint("clock", node, f"{head}.{attr}()")
        elif head in ENTROPY_MODULES or resolved in (
            "os.urandom",
        ) or (head == "uuid" and attr in UUID_ENTROPY):
            self._taint("entropy", node, f"{resolved}()")
        elif resolved == "os.getenv" or resolved in ("os.environ.get",):
            self._taint("env", node, f"{resolved}()")
        elif resolved.startswith("hashlib.") or attr in ("hexdigest", "digest"):
            self._taint("hash_digest", node, resolved)
        elif resolved in ("json.dumps",):
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            if "sort_keys" not in kwargs:
                self._taint("dumps_unsorted", node, "json.dumps without sort_keys")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = _dotted(node.value)
        if dotted and self._resolve_alias(dotted) == "os.environ":
            self._taint("env", node, "os.environ[...]")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare method/function references (callback registration).
        if isinstance(node.ctx, ast.Load):
            dotted = _dotted(node)
            if dotted and (dotted.startswith("self.") or "." not in dotted):
                self._fn.refs.append(dotted)
            if dotted and self._resolve_alias(dotted) == "os.environ":
                pass  # handled at the Subscript/Call level
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self._fn.refs.append(node.id)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._taint("set_iter", node.iter, "iteration over a set expression")
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if _is_set_expr(node.iter):
            self._taint("set_iter", node.iter, "comprehension over a set expression")
        self.generic_visit(node)

    # -- emit / submit sites ----------------------------------------------

    def _check_emit(
        self, node: ast.Call, dotted: Optional[str], resolved: Optional[str]
    ) -> None:
        if dotted is None or not node.args:
            return
        leaf = dotted.rsplit(".", 1)[-1]
        if leaf not in ("emit", "emit_cell_event"):
            return
        first = node.args[0]
        kind_expr: Optional[str] = None
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            kind_expr = f"str:{first.value}"
        else:
            kdot = _dotted(first)
            if kdot:
                kind_expr = kdot
        if kind_expr is None:
            return
        kwargs: List[str] = []
        star_calls: List[str] = []
        unresolved = False
        for kw in node.keywords:
            if kw.arg is not None:
                kwargs.append(kw.arg)
            elif isinstance(kw.value, ast.Call):
                sdot = _dotted(kw.value.func)
                if sdot:
                    star_calls.append(sdot)
                else:
                    unresolved = True
            else:
                unresolved = True
        self.facts.emits.append(
            EmitSite(
                kind_expr=kind_expr,
                kwargs=kwargs,
                star_calls=star_calls,
                unresolved_star=unresolved,
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    def _check_submit(
        self, node: ast.Call, dotted: Optional[str], resolved: Optional[str]
    ) -> None:
        if dotted is None:
            return
        leaf = dotted.rsplit(".", 1)[-1]
        callee_node: Optional[ast.expr] = None
        args: Sequence[ast.expr] = ()
        via = leaf
        if leaf in ("submit", "apply_async") and node.args:
            callee_node, args = node.args[0], node.args[1:]
        elif leaf == "map" and "." in dotted and node.args:
            # Only pool-ish receivers: ignore builtins map() (no attr).
            callee_node, args = node.args[0], node.args[1:]
        elif resolved in ("multiprocessing.Process", "threading.Thread") or leaf == "Process":
            for kw in node.keywords:
                if kw.arg == "target":
                    callee_node = kw.value
                    via = "Process"
        for kw in node.keywords:
            if kw.arg == "initializer":
                self.facts.submits.append(
                    SubmitSite(
                        via="initializer",
                        callee=self._callee_expr(kw.value),
                        args=[],
                        line=node.lineno,
                        col=node.col_offset + 1,
                    )
                )
        if callee_node is None:
            return
        self.facts.submits.append(
            SubmitSite(
                via=via,
                callee=self._callee_expr(callee_node),
                args=[self._callee_expr(a) for a in args],
                line=node.lineno,
                col=node.col_offset + 1,
            )
        )

    def _callee_expr(self, node: ast.expr) -> str:
        if isinstance(node, ast.Lambda):
            return "<lambda>"
        if isinstance(node, ast.Call):
            inner = _dotted(node.func)
            if inner is not None:
                resolved = self._resolve_alias(inner)
                if resolved in ("functools.partial", "partial"):
                    if node.args:
                        target = self._callee_expr(node.args[0])
                        return f"partial:{target}"
                    return "partial:?"
                return f"call:{resolved}"
            return "?"
        dotted = _dotted(node)
        return dotted if dotted is not None else "?"


def extract_module(source: str, path: str, module: Optional[str] = None) -> ModuleFacts:
    """Parse ``source`` and distill it into :class:`ModuleFacts`."""
    facts = ModuleFacts(
        module=module if module is not None else module_name_for(path),
        path=path,
        sha=source_sha(source),
    )
    waivers, hash_exempt = _parse_comments(source)
    facts.waivers = waivers
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        facts.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        return facts
    extractor = _Extractor(facts, hash_exempt)
    extractor.visit(tree)
    # Deduplicate the (potentially huge) bare-name ref lists.
    for fn in facts.functions.values():
        fn.refs = sorted(set(fn.refs))
        fn.calls = sorted(set(fn.calls))
    return facts
