"""Whole-program symbol resolution, call graph, and reachability.

Built from every module's :class:`~repro.devtools.analyzer.facts.ModuleFacts`:

* a **symbol table** mapping ``module:qualname`` to functions and
  ``module:ClassName`` to classes, with from-import links so a name
  written in one module resolves to its definition in another;
* a **call graph** whose edges come from three sources, in decreasing
  confidence: direct calls (``foo()``, ``mod.foo()``, ``self.m()``,
  typed-receiver ``x.m()`` where ``x``'s class is known from a
  constructor assignment or annotation), constructor calls (edge to
  ``Class.__init__`` and every method the class registers as an engine
  process), and bare *references* to known functions (callback
  registration — ``event.callbacks.append(self._resume)`` makes
  ``_resume`` reachable from wherever the append happens);
* **reachability** — BFS from the declared sim-pure roots with parent
  pointers, so every finding can print its call chain.

The graph is an over-approximation (references count as edges) — the
right bias for a determinism analysis, where a missed path is a silent
cache-corruption hazard and a spurious path costs one waiver.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.devtools.analyzer.facts import MODULE_BODY, ClassFacts, FunctionFacts, ModuleFacts

__all__ = ["FunctionId", "ProgramGraph", "build_graph"]

#: A function's global identity: ``"<module>:<qualname>"``.
FunctionId = str


class ProgramGraph:
    """The resolved whole-program view the analysis passes consume."""

    def __init__(self, modules: Mapping[str, ModuleFacts]):
        #: module name -> facts
        self.modules: Dict[str, ModuleFacts] = dict(modules)
        #: function id -> (module facts, function facts)
        self.functions: Dict[FunctionId, Tuple[ModuleFacts, FunctionFacts]] = {}
        #: "module:Class" -> class facts
        self.classes: Dict[str, Tuple[ModuleFacts, ClassFacts]] = {}
        #: method name -> ids of every class method with that name
        self._methods_by_name: Dict[str, List[FunctionId]] = {}
        #: function name -> ids of every module-level function so named
        self._functions_by_name: Dict[str, List[FunctionId]] = {}
        #: caller id -> callee ids
        self.edges: Dict[FunctionId, Set[FunctionId]] = {}
        self._index()
        self._link()

    # -- indexing ---------------------------------------------------------

    def _index(self) -> None:
        for mod in self.modules.values():
            for qualname, fn in mod.functions.items():
                fid = f"{mod.module}:{qualname}"
                self.functions[fid] = (mod, fn)
                if "." in qualname:
                    method = qualname.rsplit(".", 1)[1]
                    self._methods_by_name.setdefault(method, []).append(fid)
                elif qualname != MODULE_BODY:
                    self._functions_by_name.setdefault(qualname, []).append(fid)
            for cname, cls in mod.classes.items():
                self.classes[f"{mod.module}:{cname}"] = (mod, cls)

    def resolve_class(self, mod: ModuleFacts, written: str) -> Optional[str]:
        """Resolve a class name as written in ``mod`` to a class key."""
        dotted = written
        head, _, rest = dotted.partition(".")
        if head in mod.from_imports:
            dotted = mod.from_imports[head] + ("." + rest if rest else "")
        elif head in mod.imports:
            dotted = mod.imports[head] + ("." + rest if rest else "")
        # "pkg.mod.Class" -> class key; bare "Class" -> same module.
        if "." in dotted:
            owner, leaf = dotted.rsplit(".", 1)
            key = f"{owner}:{leaf}"
            if key in self.classes:
                return key
            # The import may point at a package __init__ re-export:
            # fall back to any class with this name in the tree.
            candidates = [k for k in self.classes if k.endswith(f":{leaf}")]
            if len(candidates) == 1:
                return candidates[0]
            return None
        key = f"{mod.module}:{dotted}"
        return key if key in self.classes else None

    def class_method(self, class_key: str, method: str) -> Optional[FunctionId]:
        """Look up ``method`` on the class or (recursively) its bases."""
        seen: Set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            entry = self.classes.get(key)
            if entry is None:
                continue
            mod, cls = entry
            fid = f"{mod.module}:{cls.name}.{method}"
            if fid in self.functions:
                return fid
            for base in cls.bases:
                base_key = self.resolve_class(mod, base)
                if base_key is not None:
                    stack.append(base_key)
        return None

    def subclasses_of(self, class_key: str) -> List[str]:
        """Every class key whose (transitive) bases include ``class_key``."""
        leaf = class_key.rsplit(":", 1)[1]
        out: List[str] = []
        for key, (mod, cls) in self.classes.items():
            if key == class_key:
                continue
            stack = list(cls.bases)
            seen: Set[str] = set()
            found = False
            current_mod = mod
            while stack and not found:
                base = stack.pop()
                resolved = self.resolve_class(current_mod, base)
                if resolved is None or resolved in seen:
                    # Unresolvable bases still match by trailing name so
                    # test-tree subclasses of re-exported classes count.
                    if base.rsplit(".", 1)[-1] == leaf:
                        found = True
                    continue
                seen.add(resolved)
                if resolved == class_key:
                    found = True
                    break
                entry = self.classes.get(resolved)
                if entry is not None:
                    current_mod, base_cls = entry
                    stack.extend(base_cls.bases)
            if found:
                out.append(key)
        return sorted(out)

    # -- edge construction ------------------------------------------------

    def _add_edge(self, caller: FunctionId, callee: Optional[FunctionId]) -> None:
        if callee is None or callee == caller:
            return
        self.edges.setdefault(caller, set()).add(callee)

    def _resolve_call(
        self, mod: ModuleFacts, fn: FunctionFacts, written: str
    ) -> Optional[FunctionId]:
        head, _, rest = written.partition(".")
        # self.method()
        if head == "self" and "." in fn.qualname and rest:
            class_name = fn.qualname.rsplit(".", 1)[0]
            method = rest.split(".")[0]
            resolved = self.class_method(f"{mod.module}:{class_name}", method)
            if resolved is not None:
                return resolved
            # self.<attr>.method(): typed instance attribute
            if "." in rest:
                attr, _, attr_method = rest.partition(".")
                cls_entry = self.classes.get(f"{mod.module}:{class_name}")
                if cls_entry is not None:
                    attr_type = cls_entry[1].attr_types.get(attr)
                    if attr_type:
                        attr_key = self.resolve_class(mod, attr_type)
                        if attr_key is not None:
                            return self.class_method(attr_key, attr_method.split(".")[0])
            return None
        if not rest:
            # Bare name: local function, from-imported function, or class.
            local = f"{mod.module}:{written}"
            if local in self.functions:
                return local
            target = mod.from_imports.get(written)
            if target is not None:
                owner, _, leaf = target.rpartition(".")
                fid = f"{owner}:{leaf}"
                if fid in self.functions:
                    return fid
                # Re-exported through a package __init__.
                matches = self._functions_by_name.get(leaf, [])
                if len(matches) == 1:
                    return matches[0]
            # Constructor call -> __init__.
            class_key = self.resolve_class(mod, written)
            if class_key is not None:
                return self.class_method(class_key, "__init__")
            return None
        # Dotted: module alias, typed local, or class constructor.
        if head in fn.local_types:
            class_key = self.resolve_class(mod, fn.local_types[head])
            if class_key is not None:
                return self.class_method(class_key, rest.split(".")[0])
            return None
        target_mod = mod.imports.get(head) or (
            mod.from_imports.get(head) if mod.from_imports.get(head, "") in self.modules else None
        )
        if target_mod and target_mod in self.modules:
            leaf = rest.split(".")[0]
            fid = f"{target_mod}:{leaf}"
            if fid in self.functions:
                return fid
            class_key = f"{target_mod}:{leaf}"
            if class_key in self.classes and "." in rest:
                return self.class_method(class_key, rest.split(".")[1])
            if class_key in self.classes:
                return self.class_method(class_key, "__init__")
        # ClassName.method(...) written directly.
        class_key = self.resolve_class(mod, head)
        if class_key is not None:
            return self.class_method(class_key, rest.split(".")[0])
        return None

    def _link(self) -> None:
        for fid, (mod, fn) in self.functions.items():
            for written in fn.calls:
                self._add_edge(fid, self._resolve_call(mod, fn, written))
                # A constructor call also implicitly reaches every method
                # the instance's own __init__ registers; that shows up
                # naturally through __init__'s refs/calls, so no extra
                # edges are needed here.
            for ref in fn.refs:
                self._add_edge(fid, self._resolve_ref(mod, fn, ref))

    def _resolve_ref(
        self, mod: ModuleFacts, fn: FunctionFacts, ref: str
    ) -> Optional[FunctionId]:
        """Resolve a bare function/method *reference* (no call)."""
        if ref.startswith("self."):
            if "." not in fn.qualname:
                return None
            class_name = fn.qualname.rsplit(".", 1)[0]
            return self.class_method(f"{mod.module}:{class_name}", ref[5:].split(".")[0])
        if "." in ref:
            return None  # dotted non-self references resolve via calls
        local = f"{mod.module}:{ref}"
        if local in self.functions:
            return local
        target = mod.from_imports.get(ref)
        if target is not None:
            owner, _, leaf = target.rpartition(".")
            fid = f"{owner}:{leaf}"
            if fid in self.functions:
                return fid
        return None

    # -- reachability -----------------------------------------------------

    def reachable_from(
        self, roots: Sequence[str]
    ) -> Tuple[Set[FunctionId], Dict[FunctionId, Optional[FunctionId]]]:
        """BFS closure over ``roots`` (``module:qualname`` or ``module:*``).

        Returns the reachable set and parent pointers for chain
        reconstruction (roots map to ``None``).
        """
        start: List[FunctionId] = []
        for root in roots:
            module, _, qual = root.partition(":")
            if qual == "*":
                start.extend(
                    fid for fid in self.functions if fid.startswith(module + ":")
                )
            elif f"{module}:{qual}" in self.functions:
                start.append(f"{module}:{qual}")
        parents: Dict[FunctionId, Optional[FunctionId]] = {}
        queue: "deque[FunctionId]" = deque()
        for fid in start:
            if fid not in parents:
                parents[fid] = None
                queue.append(fid)
        while queue:
            fid = queue.popleft()
            for callee in sorted(self.edges.get(fid, ())):
                if callee not in parents:
                    parents[callee] = fid
                    queue.append(callee)
        return set(parents), parents

    @staticmethod
    def chain(
        parents: Mapping[FunctionId, Optional[FunctionId]], fid: FunctionId
    ) -> Tuple[str, ...]:
        """Root-first call chain ending at ``fid``."""
        chain: List[str] = []
        cursor: Optional[FunctionId] = fid
        seen: Set[str] = set()
        while cursor is not None and cursor not in seen:
            seen.add(cursor)
            chain.append(cursor)
            cursor = parents.get(cursor)
        return tuple(reversed(chain))


def build_graph(modules: Iterable[ModuleFacts]) -> ProgramGraph:
    """Index + link every module's facts into a :class:`ProgramGraph`."""
    return ProgramGraph({mod.module: mod for mod in modules})
