"""Per-file-hash fact cache: warm runs skip the parse, never the passes.

Extraction (:func:`~repro.devtools.analyzer.facts.extract_module`) is
the analyzer's expensive phase — one full AST walk per file.  The cache
stores each file's serialized :class:`ModuleFacts` keyed by the SHA-256
of its *content*, so a warm run re-parses only files whose bytes
changed; renames hit too, because the key is the content hash, not the
path.  The whole-program passes always run fresh — they are cheap and
depend on the cross-product of files, which no per-file key captures.

The cache file is a plain JSON object, versioned so a facts-schema
change invalidates everything at once, and it is advisory: a missing,
corrupt, or stale-version cache means a cold run, never an error.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Mapping, Optional

from repro.devtools.analyzer.facts import ModuleFacts, facts_from_payload

__all__ = ["FactsCache"]

#: Bump when the ModuleFacts payload shape changes.
CACHE_VERSION = 1


class FactsCache:
    """Content-addressed facts store backed by one JSON file."""

    def __init__(self, path: Optional[str]):
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, Any] = {}
        self._dirty = False
        if path is not None and os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if (
                    isinstance(payload, dict)
                    and payload.get("version") == CACHE_VERSION
                    and isinstance(payload.get("entries"), dict)
                ):
                    self._entries = payload["entries"]
            except (OSError, ValueError):
                self._entries = {}

    def get(self, sha: str) -> Optional[ModuleFacts]:
        payload = self._entries.get(sha)
        if payload is None:
            self.misses += 1
            return None
        try:
            facts = facts_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def put(self, facts: ModuleFacts) -> None:
        self._entries[facts.sha] = facts.to_payload()
        self._dirty = True

    def prune(self, live_shas: Mapping[str, str]) -> None:
        """Drop entries for content no longer present in the tree."""
        live = set(live_shas.values())
        dead = [sha for sha in self._entries if sha not in live]
        for sha in dead:
            del self._entries[sha]
            self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {"version": CACHE_VERSION, "entries": self._entries}
        tmp = f"{self.path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp, self.path)
        except OSError:
            pass  # advisory: a read-only checkout just runs cold
