"""Runtime determinism verification: run twice, hash, compare.

``simlint`` (static) and ``mypy`` (types) catch determinism hazards a
human can name in advance; this module catches the ones nobody named.
:func:`verify_determinism` runs one small scenario **twice under the
same seed**, fingerprints each run — a SHA-256 over the *entire event
schedule* (every scheduled event's time/priority/heap depth, every
fired event, every started process, bit-exact via IEEE-754 encoding)
plus every frame span — and fails if the two digests diverge.

Any nondeterminism that affects behaviour must perturb at least one
event time, one scheduling order, or one frame's journey, so the
schedule hash is a high-sensitivity tripwire: a single late event in a
20-second run flips the digest.

CI runs this as a separate job (``odr-sim verify-determinism``); the
test suite additionally property-tests it across random seeds and
checks that a deliberately wall-clock-perturbed system is caught.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.probes import EngineProbe
from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.spec import FaultPlan

__all__ = [
    "DeterminismReport",
    "RunFingerprint",
    "ScheduleRecorder",
    "fingerprint_run",
    "verify_determinism",
]


class ScheduleRecorder(EngineProbe):
    """Engine probe that folds the whole event schedule into a SHA-256.

    Every hook encodes its arguments bit-exactly (doubles via
    ``struct.pack('<d', ...)``), so two runs collide only if their event
    calendars are identical in times, priorities, heap depths, ordering,
    and process starts.  The wall clock is pinned to zero — the recorder
    must never make the fingerprint depend on host time.
    """

    def __init__(self) -> None:
        super().__init__(wallclock=lambda: 0.0)
        self._digest = hashlib.sha256()

    def on_event_scheduled(self, time_ms: float, priority: int, heap_depth: int) -> None:
        super().on_event_scheduled(time_ms, priority, heap_depth)
        self._digest.update(b"s")
        self._digest.update(struct.pack("<dqq", time_ms, priority, heap_depth))

    def on_event_fired(self, now_ms: float, heap_depth: int) -> None:
        super().on_event_fired(now_ms, heap_depth)
        self._digest.update(b"f")
        self._digest.update(struct.pack("<dq", now_ms, heap_depth))

    def on_process_started(self, name: str) -> None:
        super().on_process_started(name)
        self._digest.update(b"p")
        self._digest.update(name.encode("utf-8"))

    def fold_spans(self, telemetry: Telemetry) -> None:
        """Fold every frame span (stages, drops, display) into the digest."""
        for span in telemetry.spans:
            self._digest.update(b"F")
            self._digest.update(
                struct.pack("<qd?", span.frame_id, span.opened_at, span.priority)
            )
            for interval in span.intervals:
                self._digest.update(interval.stage.encode("utf-8"))
                end = interval.end if interval.end is not None else float("nan")
                self._digest.update(struct.pack("<dd", interval.start, end))
            if span.drop_reason is not None:
                self._digest.update(b"D" + span.drop_reason.encode("utf-8"))
            if span.closed_at is not None:
                self._digest.update(struct.pack("<d", span.closed_at))

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


@dataclass(frozen=True)
class RunFingerprint:
    """Digest + headline counters of one fingerprinted run."""

    digest: str
    events_scheduled: int
    events_fired: int
    processes_started: int
    spans: int


@dataclass(frozen=True)
class DeterminismReport:
    """Outcome of a same-seed double run."""

    seed: int
    first: RunFingerprint
    second: RunFingerprint

    @property
    def ok(self) -> bool:
        return self.first.digest == self.second.digest

    def describe(self) -> str:
        status = "MATCH" if self.ok else "DIVERGED"
        lines = [
            f"determinism check (seed={self.seed}): {status}",
            f"  run 1: {self.first.digest}  "
            f"({self.first.events_fired} events, {self.first.spans} spans)",
            f"  run 2: {self.second.digest}  "
            f"({self.second.events_fired} events, {self.second.spans} spans)",
        ]
        return "\n".join(lines)


def fingerprint_run(
    seed: int,
    benchmark: str = "IM",
    regulator: str = "ODR60",
    platform: str = "private",
    resolution: str = "720p",
    duration_ms: float = 2000.0,
    warmup_ms: float = 500.0,
    mutate: Optional[Callable[[object, int], None]] = None,
    run_index: int = 0,
    fault_plan: Optional["FaultPlan"] = None,
) -> RunFingerprint:
    """Run one scenario and return its schedule fingerprint.

    ``mutate`` (test hook) receives the constructed
    :class:`~repro.pipeline.system.CloudSystem` and ``run_index`` before
    the run starts; the determinism tests use it to splice wall-clock
    noise into a sampler and prove the verifier catches it.
    ``fault_plan`` injects faults (:mod:`repro.faults`) into both runs —
    fault application draws from seeded RNG streams, so a faulted run
    must fingerprint identically too.
    """
    # Imported lazily: devtools must stay importable without dragging the
    # whole pipeline in (the linter half has no simulation dependencies).
    from repro.pipeline import CloudSystem, SystemConfig
    from repro.regulators import make_regulator
    from repro.workloads import PLATFORMS, Resolution

    recorder = ScheduleRecorder()
    telemetry = Telemetry()
    telemetry.probe = recorder
    config = SystemConfig(
        benchmark=benchmark,
        platform=PLATFORMS[platform],
        resolution=Resolution(resolution),
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=warmup_ms,
    )
    system = CloudSystem(
        config, make_regulator(regulator), telemetry=telemetry, fault_plan=fault_plan
    )
    if mutate is not None:
        mutate(system, run_index)
    system.run()
    recorder.fold_spans(telemetry)
    return RunFingerprint(
        digest=recorder.hexdigest(),
        events_scheduled=recorder.events_scheduled,
        events_fired=recorder.events_fired,
        processes_started=recorder.processes_started,
        spans=len(telemetry.spans),
    )


def verify_determinism(
    seed: int = 1,
    benchmark: str = "IM",
    regulator: str = "ODR60",
    platform: str = "private",
    resolution: str = "720p",
    duration_ms: float = 2000.0,
    warmup_ms: float = 500.0,
    mutate: Optional[Callable[[object, int], None]] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> DeterminismReport:
    """Run the scenario twice under ``seed`` and compare fingerprints."""
    runs = [
        fingerprint_run(
            seed,
            benchmark=benchmark,
            regulator=regulator,
            platform=platform,
            resolution=resolution,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            mutate=mutate,
            run_index=index,
            fault_plan=fault_plan,
        )
        for index in range(2)
    ]
    return DeterminismReport(seed=seed, first=runs[0], second=runs[1])
