"""The experiment record: every number the paper reports for one run.

:class:`ExperimentRecord` is the flat measurement bundle one executed
(benchmark × configuration × seed) cell produces: per-stage FPS,
FPS-gap statistics, MtP latency, windowed QoS satisfaction,
DRAM/IPC/power, and bandwidth.  :func:`build_experiment_record`
assembles one from a finished :class:`~repro.pipeline.system.RunResult`.

Records are plain frozen dataclasses, so they pickle across process
boundaries (the parallel executor returns them from worker processes)
and round-trip through JSON bit-identically
(:func:`record_as_dict` / :func:`record_from_dict`, the result store's
on-disk format).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional, TYPE_CHECKING

from repro.hardware import HardwareReport, evaluate_hardware
from repro.hardware.dram import DramReport
from repro.hardware.pmu import PmuCounters
from repro.hardware.power import PowerReport
from repro.metrics import BoxStats, RecoveryStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = [
    "RECORD_DICT_SCHEMA",
    "ExperimentRecord",
    "build_experiment_record",
    "record_as_dict",
    "record_from_dict",
]

#: Bumped whenever the serialized record layout changes incompatibly;
#: the result store refuses (re-executes) cells with a stale schema.
#: 2: added the optional ``recovery`` block (fault-injection analytics).
RECORD_DICT_SCHEMA = 2


@dataclass(frozen=True)
class ExperimentRecord:
    """All measurements of one (benchmark, configuration, seed) run."""

    benchmark: str
    config_label: str
    platform: str
    resolution: str
    regulator: str
    fps_target: Optional[float]

    render_fps: float
    encode_fps: float
    client_fps: float
    client_fps_box: BoxStats
    fps_gap_mean: float
    fps_gap_max: float

    mtp_mean_ms: Optional[float]
    mtp_box: Optional[BoxStats]

    qos_target: float
    qos_satisfaction: float

    hardware: HardwareReport
    bandwidth_mbps: float
    frames_rendered: int
    frames_dropped: int

    #: Fault-recovery analytics (:mod:`repro.metrics.recovery`);
    #: ``None`` for runs without an injected fault plan.
    recovery: Optional[RecoveryStats] = None

    @property
    def power_w(self) -> float:
        return self.hardware.power.total_w

    @property
    def ipc(self) -> float:
        return self.hardware.ipc

    @property
    def row_miss_rate(self) -> float:
        return self.hardware.dram.row_miss_rate

    @property
    def read_access_ns(self) -> float:
        return self.hardware.dram.read_access_ns


def build_experiment_record(
    result: "RunResult",
    benchmark: str,
    config_label: str,
    platform: str,
    resolution: str,
    regulator_name: str,
    fps_target: Optional[float],
    qos_target: float,
    recovery: Optional[RecoveryStats] = None,
) -> ExperimentRecord:
    """Measure a finished run into one :class:`ExperimentRecord`."""
    gap = result.fps_gap()
    mtp_samples = result.mtp_samples()
    mtp_mean = sum(mtp_samples) / len(mtp_samples) if mtp_samples else None
    mtp_box = result.mtp_box() if mtp_samples else None
    qos = result.qos(qos_target)

    return ExperimentRecord(
        benchmark=benchmark,
        config_label=config_label,
        platform=platform,
        resolution=resolution,
        regulator=regulator_name,
        fps_target=fps_target,
        render_fps=result.render_fps,
        encode_fps=result.encode_fps,
        client_fps=result.client_fps,
        client_fps_box=result.client_fps_box(),
        fps_gap_mean=gap.mean_gap,
        fps_gap_max=gap.max_gap,
        mtp_mean_ms=mtp_mean,
        mtp_box=mtp_box,
        qos_target=qos_target,
        qos_satisfaction=qos.satisfaction if qos.n_windows else 0.0,
        hardware=evaluate_hardware(result),
        bandwidth_mbps=result.bandwidth_mbps(),
        frames_rendered=result.frames_rendered(),
        frames_dropped=len(result.dropped_frames()),
        recovery=recovery,
    )


def record_as_dict(record: ExperimentRecord) -> Dict[str, Any]:
    """Flatten a record into a JSON-serializable dict (lossless)."""
    return asdict(record)


def _box_from(payload: Optional[Mapping[str, Any]]) -> Optional[BoxStats]:
    if payload is None:
        return None
    return BoxStats(
        count=int(payload["count"]),
        mean=float(payload["mean"]),
        p1=float(payload["p1"]),
        p25=float(payload["p25"]),
        p75=float(payload["p75"]),
        p99=float(payload["p99"]),
    )


def record_from_dict(payload: Mapping[str, Any]) -> ExperimentRecord:
    """Rebuild a record from :func:`record_as_dict` output."""
    data = dict(payload)
    client_box = _box_from(data["client_fps_box"])
    assert client_box is not None
    data["client_fps_box"] = client_box
    data["mtp_box"] = _box_from(data["mtp_box"])
    hardware = data["hardware"]
    data["hardware"] = HardwareReport(
        dram=DramReport(**hardware["dram"]),
        ipc=float(hardware["ipc"]),
        power=PowerReport(**hardware["power"]),
        pmu=PmuCounters(**hardware["pmu"]),
    )
    recovery = data.get("recovery")
    data["recovery"] = RecoveryStats(**recovery) if recovery is not None else None
    return ExperimentRecord(**data)
