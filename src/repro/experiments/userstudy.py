"""User-experience study surrogate (paper Sec. 6.7, Figs. 14-15).

The paper's 30-participant IRB study cannot be reproduced without
humans; this module substitutes a **QoE rating model** in the spirit of
published cloud-gaming QoE models (the paper itself cites Slivar et
al. and Zadtootaghaj et al. for FPS/bitrate-driven QoE): each simulated
participant plays one randomly-assigned benchmark at 1080p on GCE under
every configuration (plus a local NonCloud execution) and produces

* a 1-10 **rating** driven by client FPS, MtP latency, stutter
  (windowed FPS drops), and tearing (unregulated frame delivery), with
  per-participant sensitivity noise; and
* yes/maybe/no **reports** for lag, stutter, and tearing, thresholded
  against per-participant tolerances.

The model's coefficients are chosen so the *shape* of Figs. 14-15 holds
(ODRMax ≈ NonCloud ≫ NoReg; ODR ahead of Int/RVS at both QoS goals);
absolute ratings are surrogate values, not human data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig, PlatformRes
from repro.experiments.report import format_table
from repro.experiments.record import ExperimentRecord
from repro.experiments.runner import Runner
from repro.metrics.stats import mean
from repro.simcore import SeededRng
from repro.workloads import BENCHMARKS, GCE, Resolution
from repro.workloads.platforms import LOCAL_MACHINE

__all__ = ["UserStudy", "SessionFeatures", "run_user_study"]

#: Study configurations in Fig. 14's order.  NonCloud is synthesized on
#: the LOCAL_MACHINE platform under NoReg (local free-running rendering
#: with a 60 Hz display).
STUDY_SPECS = [
    "NonCloud",
    "NoReg",
    "IntMax",
    "RVSMax",
    "ODRMax",
    "Int30",
    "RVS30",
    "ODR30",
]


@dataclass(frozen=True)
class SessionFeatures:
    """QoE-relevant features extracted from one simulated session."""

    client_fps: float
    mtp_ms: float
    #: Fraction of 200 ms windows whose FPS fell below 2/3 of the mean.
    stutter_frac: float
    #: Tearing proxy: unregulated delivery ratio (cloud frames arriving
    #: faster than the display can coherently present them).
    tear_score: float


def extract_features(
    record: ExperimentRecord,
    refresh_hz: float = 60.0,
    display_synced: bool = False,
) -> SessionFeatures:
    """Compute the QoE feature vector from an experiment record.

    ``display_synced`` marks a locally-composited session (the NonCloud
    baseline): the compositor caps the visible rate at the refresh rate
    and eliminates tearing.
    """
    box = record.client_fps_box
    fps = record.client_fps
    # Stutter: how far the 25th-percentile window falls below the mean
    # delivery rate (sustained dips, not single-window noise).
    stutter = max(0.0, 1.0 - (box.p25 / fps)) if fps > 0 else 1.0
    if display_synced:
        # A locally-composited session: the compositor caps the visible
        # rate at the refresh rate and eliminates tearing.
        return SessionFeatures(
            client_fps=min(fps, refresh_hz),
            mtp_ms=record.mtp_mean_ms if record.mtp_mean_ms is not None else 0.0,
            stutter_frac=stutter,
            tear_score=0.0,
        )
    # Tearing artifacts scale with how much the cloud over-delivers
    # relative to what the client can coherently present: an unsynced
    # client draw always tears occasionally (the 0.12 floor), and the
    # excess-rendering gap multiplies the exposure.
    tear = min(1.0, 0.12 + max(0.0, record.fps_gap_mean - 3.0) / 72.0)
    return SessionFeatures(
        client_fps=fps,
        mtp_ms=record.mtp_mean_ms if record.mtp_mean_ms is not None else 0.0,
        stutter_frac=stutter,
        tear_score=tear,
    )


@dataclass
class Participant:
    """One simulated study participant with personal tolerances."""

    pid: int
    benchmark: str
    #: Latency above which the participant starts perceiving lag (ms).
    lag_threshold_ms: float
    #: Stutter fraction above which stutter is perceived.
    stutter_threshold: float
    #: Tearing score above which tearing is perceived.
    tear_threshold: float
    #: Personal rating offset.
    bias: float


class UserStudy:
    """The 30-participant study surrogate."""

    N_PARTICIPANTS = 30

    #: Rating model coefficients (see module docstring).
    BASE_RATING = 8.8
    LATENCY_KNEE_MS = 100.0
    LATENCY_PENALTY_PER_100MS = 1.15
    FPS_KNEE = 40.0
    FPS_PENALTY_PER_10FPS = 0.8
    STUTTER_PENALTY = 3.0
    TEAR_PENALTY = 2.2

    def __init__(self, runner: Runner, seed: int = 7):
        self.runner = runner
        self.rng = SeededRng(seed, name="userstudy")
        self.combo = PlatformRes(GCE, Resolution.R1080P)
        self.local_combo = PlatformRes(LOCAL_MACHINE, Resolution.R1080P)
        self.participants = [self._make_participant(i) for i in range(self.N_PARTICIPANTS)]
        self._rating_seq = 0

    def _make_participant(self, pid: int) -> Participant:
        rng = self.rng.child("participant", pid)
        return Participant(
            pid=pid,
            benchmark=str(rng.choice(sorted(BENCHMARKS))),
            lag_threshold_ms=rng.lognormal_mean_cv(200.0, 0.35),
            stutter_threshold=rng.lognormal_mean_cv(0.25, 0.4),
            tear_threshold=rng.lognormal_mean_cv(0.35, 0.4),
            bias=rng.normal(0.0, 0.55),
        )

    # -- session execution ---------------------------------------------------

    def _record_for(self, participant: Participant, spec: str) -> ExperimentRecord:
        if spec == "NonCloud":
            config = ExperimentConfig(self.local_combo, "NoReg")
        else:
            config = ExperimentConfig(self.combo, spec)
        return self.runner.run_cell(participant.benchmark, config)

    def rate(self, participant: Participant, features: SessionFeatures) -> float:
        """The participant's 1-10 rating for a session."""
        rating = self.BASE_RATING + participant.bias
        # Latency annoyance saturates: going from 1 s to 2 s is bad, but
        # not as bad as going from 60 ms to 1 s (log-scale penalty).
        lat_over = max(0.0, features.mtp_ms - self.LATENCY_KNEE_MS)
        rating -= self.LATENCY_PENALTY_PER_100MS * math.log2(1.0 + lat_over / 100.0)
        fps_short = max(0.0, self.FPS_KNEE - features.client_fps)
        rating -= self.FPS_PENALTY_PER_10FPS * fps_short / 10.0
        rating -= self.STUTTER_PENALTY * features.stutter_frac
        rating -= self.TEAR_PENALTY * features.tear_score
        self._rating_seq += 1
        noise = self.rng.child("noise", participant.pid, self._rating_seq).normal(0.0, 0.3)
        return max(1.0, min(10.0, rating + noise))

    def reports(self, participant: Participant, features: SessionFeatures) -> Dict[str, str]:
        """Yes / Maybe / No answers for lag, stutter, and tearing."""

        def verdict(value: float, threshold: float) -> str:
            if value > threshold:
                return "yes"
            if value > 0.6 * threshold:
                return "maybe"
            return "no"

        return {
            "lag": verdict(features.mtp_ms, participant.lag_threshold_ms),
            "stutter": verdict(features.stutter_frac, participant.stutter_threshold),
            "tearing": verdict(features.tear_score, participant.tear_threshold),
        }

    # -- study-level results ----------------------------------------------------

    def run(self) -> Dict[str, object]:
        """Run the full study; returns Fig. 14 + Fig. 15 data and text."""
        ratings: Dict[str, List[float]] = {spec: [] for spec in STUDY_SPECS}
        counts: Dict[str, Dict[str, Dict[str, int]]] = {
            spec: {q: {"yes": 0, "maybe": 0, "no": 0} for q in ("lag", "stutter", "tearing")}
            for spec in STUDY_SPECS
        }
        for participant in self.participants:
            for spec in STUDY_SPECS:
                record = self._record_for(participant, spec)
                features = extract_features(record, display_synced=(spec == "NonCloud"))
                ratings[spec].append(self.rate(participant, features))
                for question, answer in self.reports(participant, features).items():
                    counts[spec][question][answer] += 1

        avg_ratings = {spec: mean(values) for spec, values in ratings.items()}
        fig14_text = format_table(
            ["config", "avg rating (1-10)"],
            [[spec, avg_ratings[spec]] for spec in STUDY_SPECS],
            title="Figure 14: Average user ratings (surrogate QoE model)",
        )
        rows = []
        for spec in STUDY_SPECS:
            for question in ("lag", "stutter", "tearing"):
                c = counts[spec][question]
                rows.append([spec, question, c["yes"], c["maybe"], c["no"]])
        fig15_text = format_table(
            ["config", "question", "yes", "maybe", "no"],
            rows,
            title="Figure 15: Participants reporting lag/stutter/tearing",
        )
        return {
            "ratings": avg_ratings,
            "rating_samples": ratings,
            "reports": counts,
            "fig14_text": fig14_text,
            "fig15_text": fig15_text,
        }


def run_user_study(runner: Runner, seed: int = 7) -> Dict[str, object]:
    """Convenience wrapper used by the CLI and benches."""
    return UserStudy(runner, seed=seed).run()
