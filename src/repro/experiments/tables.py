"""Table 2 — average/max FPS gaps for every configuration.

The paper's Table 2 reports, for each of three platform-resolution
groups (720p private, 720p GCE, 1080p GCE) and each regulation
configuration, the FPS gap averaged over the six benchmarks and the
largest per-benchmark gap, with the worst benchmark named.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.config import ExperimentConfig, PlatformRes, platform_res_combos
from repro.experiments.plan import Plan
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.workloads import BENCHMARKS

__all__ = ["Table2Row", "table2", "table2_demands"]

#: Table 2's row order.  Fixed-target rows use the group's native target.
_ROW_SPECS = [
    "NoReg",
    "IntMax",
    "RVSMax",
    "ODRMax-noPri",
    "ODRMax",
    "Int{t}",
    "RVS{t}",
    "ODR{t}",
]


@dataclass(frozen=True)
class Table2Row:
    """One (group, configuration) cell of Table 2."""

    group: str
    spec: str
    avg_gap: float
    max_gap: float
    worst_benchmark: str


def _table2_groups() -> List[PlatformRes]:
    """The three groups the paper tabulates (720p private, 720p/1080p GCE)."""
    combos = platform_res_combos()
    return [combos[0], combos[1], combos[3]]


def table2_demands(runner: Runner) -> Plan:
    """Every cell Table 2 reads: 3 groups × 8 rows × 6 benchmarks."""
    plan = Plan()
    for combo in _table2_groups():
        target = combo.fixed_target
        for spec_template in _ROW_SPECS:
            spec = spec_template.format(t=target)
            for bench in BENCHMARKS:
                plan.add(runner.spec_for(bench, ExperimentConfig(combo, spec)))
    return plan


def table2(runner: Runner) -> Dict[str, object]:
    """Regenerate Table 2; returns rows plus an ASCII rendering."""
    rows: List[Table2Row] = []
    for combo in _table2_groups():
        target = combo.fixed_target
        for spec_template in _ROW_SPECS:
            spec = spec_template.format(t=target)
            per_bench = {}
            for bench in BENCHMARKS:
                record = runner.run_cell(bench, ExperimentConfig(combo, spec))
                per_bench[bench] = record
            avg_gap = sum(r.fps_gap_mean for r in per_bench.values()) / len(per_bench)
            worst = max(per_bench, key=lambda b: per_bench[b].fps_gap_mean)
            max_gap = per_bench[worst].fps_gap_max
            rows.append(
                Table2Row(
                    group=combo.label,
                    spec=spec,
                    avg_gap=avg_gap,
                    max_gap=max_gap,
                    worst_benchmark=worst,
                )
            )
    rendering = format_table(
        ["group", "config", "avg gap", "max gap", "worst"],
        [[r.group, r.spec, r.avg_gap, r.max_gap, r.worst_benchmark] for r in rows],
        title="Table 2: Average/Max FPS gaps per configuration",
    )
    return {"rows": rows, "text": rendering}
