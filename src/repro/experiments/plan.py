"""The planning layer: declare *what* to run before running anything.

The paper's evaluation is a 6-benchmark × 28-configuration × multi-seed
matrix (Sec. 6.1).  Instead of lazily discovering cells one
``run_cell`` call at a time, consumers (figures, tables, benches, the
CLI) declare their demands up front as :class:`CellSpec` values and
collect them into a :class:`Plan`:

* a **CellSpec** is the complete, plain-data identity of one cell —
  benchmark, platform, resolution, regulator spec, seed, duration and
  warmup.  It is hashable, picklable (workers receive it verbatim),
  and content-addressed: :attr:`CellSpec.run_id` is the ledger's
  ``run_id_for`` hash over the same canonical payload the run record
  carries, so the plan, the result store, and the run ledger all agree
  on identity.
* a **Plan** is an ordered, deduplicated collection of specs.  Cells
  are independent by construction — no spec depends on another — so an
  executor (:mod:`repro.experiments.executor`) may run them serially,
  in a process pool, or resume a half-finished sweep, without ordering
  hazards.

Demand builders for the standard sweeps live here
(:func:`matrix_demands`, :func:`bench_demands`, :func:`group_demands`);
figure- and table-shaped demands live next to their renderers
(:func:`repro.experiments.figures.figure_demands`,
:func:`repro.experiments.tables.table2_demands`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentConfig,
    PlatformRes,
    platform_res_combos,
    regulator_specs_for,
)
from repro.faults.spec import FaultPlan, FaultSpec, fault_from_dict
from repro.obs.runmeta import run_id_for
from repro.workloads import BENCHMARKS, PLATFORMS, Resolution

__all__ = [
    "CellSpec",
    "Plan",
    "bench_demands",
    "group_demands",
    "matrix_demands",
]

#: Default measurement horizon, matching :class:`~repro.experiments.runner.Runner`.
DEFAULT_DURATION_MS = 20000.0
DEFAULT_WARMUP_MS = 3000.0


@dataclass(frozen=True)
class CellSpec:
    """Plain-data identity of one (benchmark × configuration × seed) cell."""

    benchmark: str
    platform: str
    resolution: str
    regulator: str
    seed: int
    duration_ms: float = DEFAULT_DURATION_MS
    warmup_ms: float = DEFAULT_WARMUP_MS
    #: Declarative fault injection for this cell (:mod:`repro.faults`).
    #: Part of the content address whenever non-empty.
    faults: Tuple[FaultSpec, ...] = ()
    #: Chaos-sweep annotation: the catalog name the faults came from
    #: ("" outside chaos sweeps).  Presentation only — the specs
    #: themselves identify the cell.
    fault_class: str = ""  # analyzer: hash-exempt -- catalog label; the fault specs themselves are hashed

    @classmethod
    def from_config(
        cls,
        benchmark: str,
        config: ExperimentConfig,
        seed: int,
        duration_ms: float = DEFAULT_DURATION_MS,
        warmup_ms: float = DEFAULT_WARMUP_MS,
        faults: Sequence[FaultSpec] = (),
        fault_class: str = "",
    ) -> "CellSpec":
        """Build a spec from an enumerated :class:`ExperimentConfig`."""
        combo = config.platform_res
        return cls(
            benchmark=benchmark,
            platform=combo.platform.name,
            resolution=combo.resolution.value,
            regulator=config.regulator_spec,
            seed=int(seed),
            duration_ms=float(duration_ms),
            warmup_ms=float(warmup_ms),
            faults=tuple(faults),
            fault_class=fault_class,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Wire form of this spec (JSON-safe), for the service protocol.

        Round-trips exactly through :meth:`from_dict`: every identity
        field is carried verbatim, faults via their own discriminated
        ``to_dict`` form — so a spec serialized by a client yields the
        same :attr:`run_id` on the server.
        """
        payload: Dict[str, Any] = {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "resolution": self.resolution,
            "regulator": self.regulator,
            "seed": self.seed,
            "duration_ms": self.duration_ms,
            "warmup_ms": self.warmup_ms,
        }
        if self.faults:
            payload["faults"] = [fault.to_dict() for fault in self.faults]
        if self.fault_class:
            payload["fault_class"] = self.fault_class
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CellSpec":
        """Rebuild a spec from its :meth:`to_dict` wire form."""
        return cls(
            benchmark=str(payload["benchmark"]),
            platform=str(payload["platform"]),
            resolution=str(payload["resolution"]),
            regulator=str(payload["regulator"]),
            seed=int(payload["seed"]),
            duration_ms=float(payload.get("duration_ms", DEFAULT_DURATION_MS)),
            warmup_ms=float(payload.get("warmup_ms", DEFAULT_WARMUP_MS)),
            faults=tuple(
                fault_from_dict(fault) for fault in payload.get("faults", [])
            ),
            fault_class=str(payload.get("fault_class", "")),
        )

    def config_payload(self) -> Dict[str, Any]:
        """The canonical ledger config payload (everything but the seed).

        This is byte-for-byte the payload :func:`~repro.obs.runmeta.build_record`
        hashes, so a spec's :attr:`run_id` equals its run record's
        ``run_id`` — the plan, result store, and ledger share one
        address space.  The ``faults`` key appears only when the cell
        carries faults, so fault-free cells keep the run_ids they have
        always had (checked-in baselines stay resolvable).
        """
        payload: Dict[str, Any] = {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "resolution": self.resolution,
            "regulator": self.regulator,
            "duration_ms": self.duration_ms,
            "warmup_ms": self.warmup_ms,
        }
        if self.faults:
            payload["faults"] = [fault.to_dict() for fault in self.faults]
        return payload

    def fault_plan(self) -> Optional[FaultPlan]:
        """This cell's fault plan, or ``None`` for a clean cell."""
        return FaultPlan(self.faults) if self.faults else None

    @property
    def run_id(self) -> str:
        """Content address of this cell (see :func:`~repro.obs.runmeta.run_id_for`)."""
        return run_id_for(self.config_payload(), self.seed)

    def experiment_config(self) -> ExperimentConfig:
        """Reconstruct the matrix-enumeration view of this spec."""
        combo = PlatformRes(PLATFORMS[self.platform], Resolution(self.resolution))
        return ExperimentConfig(combo, self.regulator)

    @property
    def label(self) -> str:
        """Human-readable cell name, e.g. ``IM/Priv720p/ODR60``.

        Fault-carrying cells gain a ``+<fault_class>`` suffix so ledger
        listings distinguish them from their clean twins.
        """
        base = f"{self.benchmark}/{self.experiment_config().label}"
        if self.fault_class:
            return f"{base}+{self.fault_class}"
        if self.faults:
            return f"{base}+faults"
        return base


class Plan:
    """An ordered, deduplicated set of cells to execute.

    Duplicate demands (the common case — most figures share cells) are
    collapsed by ``run_id`` on insertion; iteration preserves first-
    demand order, so executors and ledger appends are deterministic.
    """

    def __init__(self, specs: Iterable[CellSpec] = ()) -> None:
        self._specs: Dict[str, CellSpec] = {}
        self.extend(specs)

    def add(self, spec: CellSpec) -> bool:
        """Demand one cell; returns ``False`` if it was already planned."""
        run_id = spec.run_id
        if run_id in self._specs:
            return False
        self._specs[run_id] = spec
        return True

    def extend(self, specs: Iterable[CellSpec]) -> "Plan":
        for spec in specs:
            self.add(spec)
        return self

    def merge(self, other: "Plan") -> "Plan":
        """Fold another plan's demands into this one (deduplicated)."""
        return self.extend(other)

    @property
    def specs(self) -> Tuple[CellSpec, ...]:
        return tuple(self._specs.values())

    @property
    def run_ids(self) -> Tuple[str, ...]:
        return tuple(self._specs.keys())

    def __iter__(self) -> Iterator[CellSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, CellSpec):
            return item.run_id in self._specs
        return isinstance(item, str) and item in self._specs

    def __repr__(self) -> str:
        return f"Plan({len(self)} cells)"


def group_demands(
    combo: PlatformRes,
    specs: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1,),
    duration_ms: float = DEFAULT_DURATION_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
) -> Plan:
    """One platform-resolution group across regulator specs × benchmarks × seeds."""
    names = list(benchmarks) if benchmarks is not None else sorted(BENCHMARKS)
    plan = Plan()
    for spec in specs:
        for bench in names:
            for seed in seeds:
                plan.add(
                    CellSpec.from_config(
                        bench,
                        ExperimentConfig(combo, spec),
                        seed=seed,
                        duration_ms=duration_ms,
                        warmup_ms=warmup_ms,
                    )
                )
    return plan


def matrix_demands(
    benchmarks: Optional[Sequence[str]] = None,
    groups: Optional[Sequence[str]] = None,
    include_ablation: bool = False,
    seeds: Sequence[int] = (1,),
    duration_ms: float = DEFAULT_DURATION_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
) -> Plan:
    """The paper's full 28-configuration matrix (or a filtered slice).

    ``groups`` filters platform-resolution groups by label (e.g.
    ``["Priv720p", "GCE720p"]``); ``benchmarks`` restricts the
    benchmark set — together they define the "reduced matrix" smoke
    sweeps CI runs.
    """
    wanted = set(groups) if groups is not None else None
    plan = Plan()
    for combo in platform_res_combos():
        if wanted is not None and combo.label not in wanted:
            continue
        plan.merge(
            group_demands(
                combo,
                regulator_specs_for(combo, include_ablation=include_ablation),
                benchmarks=benchmarks,
                seeds=seeds,
                duration_ms=duration_ms,
                warmup_ms=warmup_ms,
            )
        )
    return plan


def bench_demands(
    benchmarks: Sequence[str],
    regulators: Sequence[str],
    seeds: Sequence[int],
    platform: str = "private",
    resolution: str = "720p",
    duration_ms: float = DEFAULT_DURATION_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
) -> Plan:
    """The ``odr-sim bench`` smoke matrix: benchmarks × regulators × seeds."""
    plan = Plan()
    for bench in benchmarks:
        for spec in regulators:
            for seed in seeds:
                plan.add(
                    CellSpec(
                        benchmark=bench,
                        platform=platform,
                        resolution=resolution,
                        regulator=spec,
                        seed=int(seed),
                        duration_ms=float(duration_ms),
                        warmup_ms=float(warmup_ms),
                    )
                )
    return plan
