"""Execution outcomes: the plain-data results of running a plan.

Extracted from :mod:`repro.experiments.executor` so the scheduling
core (:mod:`repro.experiments.scheduling`), the executors, and the
service layer (:mod:`repro.service`) can all speak the same result
vocabulary without import cycles:

* :class:`CellOutcome` — one cell that produced a record (executed,
  recalled from the store, or — under the service's cross-job dedupe —
  joined from another job's in-flight execution);
* :class:`CellFailure` — one cell that did not;
* :class:`ExecutionReport` — all outcomes of one plan, in plan order;
* :class:`ExecutionError` — the raise-on-failure wrapper.

Everything here is frozen, picklable plain data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.plan import CellSpec
from repro.experiments.record import ExperimentRecord
from repro.obs.sweep import CellResources

__all__ = [
    "CellFailure",
    "CellOutcome",
    "ExecutionError",
    "ExecutionReport",
    "exec_meta",
]


@dataclass(frozen=True)
class CellOutcome:
    """One plan cell after execution (or recall from the store)."""

    spec: CellSpec
    record: ExperimentRecord
    #: The full ledger run record, when the cell executed with ledger
    #: collection on; ``None`` for cached cells (already appended by
    #: whichever run produced them).
    ledger_record: Optional[Dict[str, Any]]
    #: Host seconds this cell's simulation took (0.0 when cached).
    wall_clock_s: float
    #: ``True`` when the result came from the store, not an execution.
    cached: bool
    #: Worker-side resource telemetry (wall, CPU user/sys, peak RSS,
    #: events/sec) for executed cells; ``None`` for cached cells.
    resources: Optional[CellResources] = None
    #: ``True`` when another concurrent job owned the execution and
    #: this job joined its in-flight result (cross-job dedupe).  Such
    #: outcomes are also ``cached`` — this job did not simulate — but
    #: the result was not in the store when the job planned it.
    deduped: bool = False


@dataclass(frozen=True)
class CellFailure:
    """One plan cell that did not produce a record."""

    spec: CellSpec
    #: Human-readable cause (exception type + message, timeout, crash).
    error: str
    #: Executions attempted before giving up.
    attempts: int = 1


@dataclass(frozen=True)
class ExecutionReport:
    """All outcomes of one executed plan, in plan order.

    A report with :attr:`failures` is *partial*: every cell in
    :attr:`outcomes` completed (and persisted, when a store/ledger was
    attached); the failed cells are enumerated with their cause, and a
    later ``--resume`` run needs to execute only those.
    """

    outcomes: Tuple[CellOutcome, ...]
    failures: Tuple[CellFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every planned cell produced a record."""
        return not self.failures

    @property
    def executed(self) -> int:
        """Cells that actually simulated in this run."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        """Cells recalled from the result store (incl. deduped joins)."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def deduped(self) -> int:
        """Cells joined from another job's in-flight execution."""
        return sum(1 for o in self.outcomes if o.deduped)

    @property
    def cell_seconds(self) -> float:
        """Summed per-cell wall clock (CPU-time-like; overlaps in parallel)."""
        return sum(o.wall_clock_s for o in self.outcomes)

    def records(self) -> List[ExperimentRecord]:
        return [o.record for o in self.outcomes]

    def outcome_for(self, run_id: str) -> CellOutcome:
        for outcome in self.outcomes:
            if outcome.spec.run_id == run_id:
                return outcome
        raise KeyError(run_id)

    def failure_for(self, run_id: str) -> CellFailure:
        for failure in self.failures:
            if failure.spec.run_id == run_id:
                return failure
        raise KeyError(run_id)

    def describe(self) -> str:
        text = (
            f"{len(self.outcomes)} cell(s): executed={self.executed} "
            f"cached={self.cached} cell_seconds={self.cell_seconds:.2f}"
        )
        if self.deduped:
            text += f" deduped={self.deduped}"
        if self.failures:
            text += f" failed={len(self.failures)}"
        return text


def exec_meta(outcome: CellOutcome) -> Optional[Dict[str, Any]]:
    """Execution-cost metadata persisted with a freshly executed cell."""
    if outcome.cached:
        return None
    meta: Dict[str, Any] = {"wall_clock_s": outcome.wall_clock_s}
    if outcome.resources is not None:
        meta["resources"] = outcome.resources.to_dict()
    return meta


class ExecutionError(RuntimeError):
    """A plan finished with failed cells (raised by ``Runner.run_plan``)."""

    def __init__(self, report: ExecutionReport) -> None:
        self.report = report
        detail = "; ".join(
            f"{failure.spec.label}: {failure.error}" for failure in report.failures
        )
        super().__init__(
            f"{len(report.failures)} of "
            f"{len(report.outcomes) + len(report.failures)} cell(s) failed: {detail}"
        )
