"""Chaos sweeps: fault classes × regulators, scored for resilience.

The paper's robustness story (Sec. 4.1) is qualitative — ODR
"accelerates" after a disturbance until the client buffer refills.
This module makes it quantitative: sweep every catalog fault class
(:mod:`repro.faults.catalog`) across the regulator groups under test,
compute recovery analytics per cell (:mod:`repro.metrics.recovery`),
and aggregate them into a per-(regulator × fault class) **resilience
table** — time to recover, frames lost, worst FPS-gap excursion, MtP
tail — that `odr-sim chaos` prints and persists.

Chaos cells are ordinary plan cells: content-addressed (the fault
specs hash into the run_id), store-cached, ledger-appended, and
executable in parallel or resumed like any other sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import CellOutcome
from repro.experiments.plan import (
    DEFAULT_DURATION_MS,
    DEFAULT_WARMUP_MS,
    CellSpec,
    Plan,
)
from repro.experiments.report import format_table
from repro.faults.catalog import build_fault_plan, fault_class_names

__all__ = [
    "ResilienceRow",
    "chaos_demands",
    "render_resilience",
    "resilience_payload",
    "resilience_rows",
]

#: Label chaos sweeps use for the fault-free baseline cells.
BASELINE_CLASS = "none"


def chaos_demands(
    benchmarks: Sequence[str],
    regulators: Sequence[str],
    fault_classes: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1,),
    platform: str = "private",
    resolution: str = "720p",
    duration_ms: float = DEFAULT_DURATION_MS,
    warmup_ms: float = DEFAULT_WARMUP_MS,
    include_baseline: bool = True,
) -> Plan:
    """The chaos matrix: benchmarks × regulators × fault classes × seeds.

    Every fault-carrying cell gets its plan from the catalog
    (:func:`~repro.faults.catalog.build_fault_plan`), scaled to the
    cell's duration/warmup so fault timing is proportional at any
    horizon.  With ``include_baseline``, a clean twin of each
    (benchmark × regulator × seed) cell is planned too — the contrast
    rows the resilience table is read against.
    """
    classes = (
        list(fault_classes) if fault_classes is not None else fault_class_names()
    )
    plan = Plan()
    for bench in benchmarks:
        for regulator in regulators:
            for seed in seeds:
                if include_baseline:
                    plan.add(
                        CellSpec(
                            benchmark=bench,
                            platform=platform,
                            resolution=resolution,
                            regulator=regulator,
                            seed=int(seed),
                            duration_ms=float(duration_ms),
                            warmup_ms=float(warmup_ms),
                            fault_class=BASELINE_CLASS,
                        )
                    )
                for name in classes:
                    fault_plan = build_fault_plan(name, duration_ms, warmup_ms)
                    plan.add(
                        CellSpec(
                            benchmark=bench,
                            platform=platform,
                            resolution=resolution,
                            regulator=regulator,
                            seed=int(seed),
                            duration_ms=float(duration_ms),
                            warmup_ms=float(warmup_ms),
                            faults=fault_plan.faults,
                            fault_class=name,
                        )
                    )
    return plan


@dataclass(frozen=True)
class ResilienceRow:
    """Aggregated recovery behaviour of one (regulator × fault class)."""

    regulator: str
    fault_class: str
    cells: int
    client_fps: float
    #: Cells whose decode FPS re-entered the pre-fault band and held.
    recovered: int
    #: Mean time-to-recover over the *recovered* cells (ms); ``None``
    #: when no cell recovered (or the class is the clean baseline).
    mean_ttr_ms: Optional[float]
    mean_frames_lost: Optional[float]
    worst_fps_gap: Optional[float]
    #: Worst per-cell p99 MtP latency during recovery (ms).
    recovery_mtp_p99_ms: Optional[float]


def resilience_rows(outcomes: Sequence[CellOutcome]) -> List[ResilienceRow]:
    """Fold executed chaos cells into per-(regulator × fault class) rows.

    Rows are sorted by fault class then regulator, baseline first, so
    the table reads as paired contrasts.
    """
    groups: Dict[Tuple[str, str], List[CellOutcome]] = {}
    for outcome in outcomes:
        spec = outcome.spec
        fault_class = spec.fault_class or (BASELINE_CLASS if not spec.faults else "ad-hoc")
        groups.setdefault((fault_class, spec.regulator), []).append(outcome)

    rows: List[ResilienceRow] = []
    for (fault_class, regulator), members in sorted(
        groups.items(), key=lambda item: (item[0][0] != BASELINE_CLASS, item[0])
    ):
        fps = [o.record.client_fps for o in members]
        recoveries = [
            o.record.recovery for o in members if o.record.recovery is not None
        ]
        ttrs = [
            r.time_to_recover_ms for r in recoveries if r.time_to_recover_ms is not None
        ]
        rows.append(
            ResilienceRow(
                regulator=regulator,
                fault_class=fault_class,
                cells=len(members),
                client_fps=sum(fps) / len(fps),
                recovered=len(ttrs),
                mean_ttr_ms=sum(ttrs) / len(ttrs) if ttrs else None,
                mean_frames_lost=(
                    sum(r.frames_lost for r in recoveries) / len(recoveries)
                    if recoveries
                    else None
                ),
                worst_fps_gap=(
                    max(r.worst_fps_gap for r in recoveries) if recoveries else None
                ),
                recovery_mtp_p99_ms=max(
                    (
                        r.recovery_mtp_p99_ms
                        for r in recoveries
                        if r.recovery_mtp_p99_ms is not None
                    ),
                    default=None,
                ),
            )
        )
    return rows


def render_resilience(rows: Sequence[ResilienceRow]) -> str:
    """ASCII resilience table (one row per regulator × fault class)."""
    table_rows: List[List[object]] = [
        [
            row.fault_class,
            row.regulator,
            row.cells,
            row.client_fps,
            f"{row.recovered}/{row.cells}",
            row.mean_ttr_ms,
            row.mean_frames_lost,
            row.worst_fps_gap,
            row.recovery_mtp_p99_ms,
        ]
        for row in rows
    ]
    return format_table(
        [
            "fault",
            "regulator",
            "cells",
            "client FPS",
            "recovered",
            "TTR ms",
            "frames lost",
            "worst gap",
            "MtP p99 ms",
        ],
        table_rows,
        title="Resilience by fault class x regulator",
    )


def resilience_payload(rows: Sequence[ResilienceRow]) -> Dict[str, Any]:
    """JSON-serializable chaos report (sentinel-comparable shape)."""
    return {
        "kind": "chaos_resilience",
        "rows": [
            {
                "fault_class": row.fault_class,
                "regulator": row.regulator,
                "cells": row.cells,
                "client_fps": row.client_fps,
                "recovered": row.recovered,
                "mean_ttr_ms": row.mean_ttr_ms,
                "mean_frames_lost": row.mean_frames_lost,
                "worst_fps_gap": row.worst_fps_gap,
                "recovery_mtp_p99_ms": row.recovery_mtp_p99_ms,
            }
            for row in rows
        ],
    }
