"""The execution layer: run a plan's cells, serially or in parallel.

An executor takes a :class:`~repro.experiments.plan.Plan`, skips every
cell the :class:`~repro.experiments.store.ResultStore` already holds,
executes the missing ones, and returns an :class:`ExecutionReport` in
plan order.  Two strategies ship:

* :class:`SerialExecutor` — one cell after another, in-process; the
  behaviour the old lazy ``Runner`` had, made explicit.
* :class:`ParallelExecutor` — a stdlib
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out
  (``--workers N``).  Each worker runs the same deterministic
  discrete-event simulation from the same :class:`CellSpec`, so the
  records it returns are **bit-identical** to a serial run — cells
  share no state, and every RNG stream is seeded from the spec alone.

Results stream back in plan order (``ProcessPoolExecutor.map``): each
finished cell is written through to the store and appended to the run
ledger *as it completes*, so an interrupted parallel sweep still
persists every finished cell, and ledger order matches the serial
order exactly.

The cell body (:func:`execute_cell`) is the single place a cell turns
into numbers: it is what workers run, what the serial path runs, and
what ``Runner.run_cell`` ultimately calls.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.plan import CellSpec, Plan
from repro.experiments.record import ExperimentRecord, build_experiment_record
from repro.experiments.store import ResultStore
from repro.obs.ledger import RunLedger
from repro.obs.probes import host_wallclock
from repro.obs.runmeta import build_record
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution

__all__ = [
    "CellOutcome",
    "ExecutionReport",
    "ParallelExecutor",
    "SerialExecutor",
    "execute_cell",
    "make_executor",
]


@dataclass(frozen=True)
class CellOutcome:
    """One plan cell after execution (or recall from the store)."""

    spec: CellSpec
    record: ExperimentRecord
    #: The full ledger run record, when the cell executed with ledger
    #: collection on; ``None`` for cached cells (already appended by
    #: whichever run produced them).
    ledger_record: Optional[Dict[str, Any]]
    #: Host seconds this cell's simulation took (0.0 when cached).
    wall_clock_s: float
    #: ``True`` when the result came from the store, not an execution.
    cached: bool


@dataclass(frozen=True)
class ExecutionReport:
    """All outcomes of one executed plan, in plan order."""

    outcomes: Tuple[CellOutcome, ...]

    @property
    def executed(self) -> int:
        """Cells that actually simulated in this run."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        """Cells recalled from the result store."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cell_seconds(self) -> float:
        """Summed per-cell wall clock (CPU-time-like; overlaps in parallel)."""
        return sum(o.wall_clock_s for o in self.outcomes)

    def records(self) -> List[ExperimentRecord]:
        return [o.record for o in self.outcomes]

    def outcome_for(self, run_id: str) -> CellOutcome:
        for outcome in self.outcomes:
            if outcome.spec.run_id == run_id:
                return outcome
        raise KeyError(run_id)

    def describe(self) -> str:
        return (
            f"{len(self.outcomes)} cell(s): executed={self.executed} "
            f"cached={self.cached} cell_seconds={self.cell_seconds:.2f}"
        )


def execute_cell(
    spec: CellSpec,
    collect_ledger: bool = False,
    telemetry_dir: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> CellOutcome:
    """Execute one cell: the deterministic unit both executors run.

    Everything the simulation needs is derived from the plain-data
    ``spec``, so this function is safe to ship to a worker process;
    the returned outcome (record + optional ledger run record) is
    likewise plain data.  ``git_rev`` is resolved by the caller once
    per plan, not per cell (workers may not even be inside the repo).
    """
    combo_platform = PLATFORMS[spec.platform]
    resolution = Resolution(spec.resolution)
    regulator = make_regulator(spec.regulator)
    sys_config = SystemConfig(
        benchmark=spec.benchmark,
        platform=combo_platform,
        resolution=resolution,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
    )
    telemetry = None
    if telemetry_dir is not None or collect_ledger:
        from repro.obs import Telemetry

        # Ledger records need gate-delay statistics (telemetry) and
        # events/sec (engine probe), so ledger collection forces both on.
        telemetry = Telemetry(engine_probe=collect_ledger)
    started = host_wallclock()
    result = CloudSystem(sys_config, regulator, telemetry=telemetry).run()
    wall_clock_s = host_wallclock() - started

    ledger_record: Optional[Dict[str, Any]] = None
    if collect_ledger:
        ledger_record = build_record(
            result,
            spec.config_payload(),
            label=spec.label,
            wall_clock_s=wall_clock_s,
            git_rev=git_rev,
        )
    if telemetry_dir is not None and telemetry is not None:
        _persist_telemetry(telemetry, spec, telemetry_dir)

    record = build_experiment_record(
        result,
        benchmark=spec.benchmark,
        config_label=spec.experiment_config().label,
        platform=combo_platform.name,
        resolution=resolution.value,
        regulator_name=regulator.name,
        fps_target=regulator.fps_target,
        qos_target=float(resolution.default_fps_target),
    )
    return CellOutcome(
        spec=spec,
        record=record,
        ledger_record=ledger_record,
        wall_clock_s=wall_clock_s,
        cached=False,
    )


def _persist_telemetry(telemetry: Any, spec: CellSpec, telemetry_dir: str) -> None:
    """Write one cell's Chrome trace + JSONL dump to ``telemetry_dir``."""
    from repro.obs import write_chrome_trace, write_jsonl

    os.makedirs(telemetry_dir, exist_ok=True)
    label = spec.experiment_config().label.replace("/", "-")
    stem = os.path.join(telemetry_dir, f"{spec.benchmark}_{label}_s{spec.seed}")
    write_chrome_trace(telemetry, stem + ".trace.json")
    write_jsonl(telemetry, stem + ".jsonl")


class SerialExecutor:
    """Execute a plan's missing cells one after another, in-process."""

    name = "serial"

    def run(
        self,
        plan: Plan,
        store: Optional[ResultStore] = None,
        ledger: Optional[RunLedger] = None,
        telemetry_dir: Optional[str] = None,
        git_rev: Optional[str] = None,
    ) -> ExecutionReport:
        """Execute ``plan``; cached cells are recalled, the rest run.

        Every freshly executed cell is written through to ``store``
        (and appended to ``ledger``) the moment it completes, so an
        interrupted sweep keeps everything finished so far.
        """
        store = store if store is not None else ResultStore()
        outcomes: Dict[str, CellOutcome] = {}
        missing: List[CellSpec] = []
        for spec in plan:
            record = store.get(spec.run_id)
            if record is not None:
                outcomes[spec.run_id] = CellOutcome(
                    spec=spec,
                    record=record,
                    ledger_record=None,
                    wall_clock_s=0.0,
                    cached=True,
                )
            else:
                missing.append(spec)
        collect_ledger = ledger is not None
        for outcome in self._execute(missing, collect_ledger, telemetry_dir, git_rev):
            store.put(outcome.spec.run_id, outcome.record)
            if ledger is not None and outcome.ledger_record is not None:
                ledger.append(outcome.ledger_record)
            outcomes[outcome.spec.run_id] = outcome
        return ExecutionReport(
            outcomes=tuple(outcomes[run_id] for run_id in plan.run_ids)
        )

    # -- strategy ----------------------------------------------------------

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
    ) -> Iterator[CellOutcome]:
        for spec in specs:
            yield execute_cell(
                spec,
                collect_ledger=collect_ledger,
                telemetry_dir=telemetry_dir,
                git_rev=git_rev,
            )


class ParallelExecutor(SerialExecutor):
    """Fan a plan's missing cells out over a process pool.

    Workers execute :func:`execute_cell` on plain :class:`CellSpec`
    payloads; results stream back in plan order, so store writes and
    ledger appends happen incrementally and in the same order a serial
    run would produce.  Output is bit-identical to
    :class:`SerialExecutor` — the DES is deterministic in the spec.
    """

    name = "parallel"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
    ) -> Iterator[CellOutcome]:
        workers = min(self.workers, len(specs))
        if workers <= 1:
            yield from super()._execute(specs, collect_ledger, telemetry_dir, git_rev)
            return
        run_one = partial(
            execute_cell,
            collect_ledger=collect_ledger,
            telemetry_dir=telemetry_dir,
            git_rev=git_rev,
        )
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # ``map`` yields in submission (= plan) order while cells
            # execute concurrently: at most head-of-line blocking.
            yield from pool.map(run_one, specs)


def make_executor(workers: int = 1) -> SerialExecutor:
    """``workers <= 1`` → serial; otherwise a pool of ``workers``."""
    if workers > 1:
        return ParallelExecutor(workers)
    return SerialExecutor()
