"""The execution layer: run a plan's cells, serially or in parallel.

An executor takes a :class:`~repro.experiments.plan.Plan`, skips every
cell the :class:`~repro.experiments.store.ResultStore` already holds,
executes the missing ones, and returns an :class:`ExecutionReport` in
plan order.  Two strategies ship:

* :class:`SerialExecutor` — one cell after another, in-process; the
  behaviour the old lazy ``Runner`` had, made explicit.
* :class:`ParallelExecutor` — a fan-out over a
  :class:`~repro.experiments.pool.WorkerPool` (``--workers N``),
  driven by the shared scheduling core
  (:func:`~repro.experiments.scheduling.schedule_cells`).  Each worker
  runs the same deterministic discrete-event simulation from the same
  :class:`CellSpec`, so the records it returns are **bit-identical**
  to a serial run — cells share no state, and every RNG stream is
  seeded from the spec alone.  Small cells are batched ``chunk`` per
  pool submission to amortize pickle/IPC overhead, and a caller that
  already owns a warm pool (the service gateway) passes it as
  ``pool=`` so worker spawn is paid once per server, not per sweep.

Each finished cell is written through to the store and appended to the
run ledger *as it completes*, so an interrupted sweep still persists
every finished cell.

**Fault tolerance.**  A sweep survives its own failures: a cell that
raises becomes a :class:`CellFailure` on the report instead of
aborting the plan; the parallel executor additionally takes a
per-cell timeout (``cell_timeout_s``) and retries cells lost to a
worker crash (:class:`~concurrent.futures.process.BrokenProcessPool`)
up to ``max_attempts`` times in a respawned pool.  The report's
:attr:`~ExecutionReport.failures` enumerate what ultimately failed;
:attr:`~ExecutionReport.ok` gates exit codes, and a follow-up
``--resume`` run re-executes only the missing cells, bit-identically.

The cell body (:func:`execute_cell`) is the single place a cell turns
into numbers: it is what workers run (via the chunk runner
:func:`execute_cells`), what the serial path runs, and what
``Runner.run_cell`` ultimately calls.

**Sweep telemetry.**  Executors optionally narrate themselves into a
:class:`~repro.obs.sweep.SweepEventBus` (``bus=``): cell
scheduled/cached/started/finished/failed/retried/timed-out events,
pool openings and breakages, worker spawns, and store quarantines.
Workers measure per-cell resources
(:class:`~repro.obs.sweep.CellResources`) and ship live events back
over the pool's manager queue.  The plane is strictly out-of-band —
with ``bus=None`` (the default) every hook site is one ``is None``
branch and results are bit-identical either way.
"""

from __future__ import annotations

import os
import signal
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from repro.experiments.plan import CellSpec, Plan
from repro.experiments.pool import WorkerPool
from repro.experiments.record import build_experiment_record
from repro.experiments.results import (
    CellFailure,
    CellOutcome,
    ExecutionError,
    ExecutionReport,
)
from repro.experiments.results import exec_meta as _exec_meta
from repro.experiments.scheduling import (
    cell_event_fields as _cell_fields,
)
from repro.experiments.scheduling import resolve_chunk, schedule_cells
from repro.experiments.store import ResultStore
from repro.metrics.recovery import RecoveryStats, recovery_stats
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.probes import host_epoch, host_wallclock
from repro.obs.runmeta import build_record
from repro.obs.sweep import ResourceMeter, SweepEventBus
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution

__all__ = [
    "CellFailure",
    "CellOutcome",
    "ExecutionError",
    "ExecutionReport",
    "ParallelExecutor",
    "SerialExecutor",
    "execute_cell",
    "execute_cells",
    "make_executor",
]

#: Test/CI hook: ``<run_id_prefix>:<marker_file>:<max_kills>`` — a worker
#: about to execute a matching cell SIGKILLs itself (at most
#: ``max_kills`` times across the sweep, tracked in ``marker_file``),
#: simulating a mid-sweep worker crash for the retry/resume paths.
_CRASH_ENV = "ODR_EXECUTOR_SIMULATED_CRASH"
#: Test hook: ``<run_id_prefix>:<seconds>`` — a worker executing a
#: matching cell sleeps first, simulating a hung cell for the timeout path.
_STALL_ENV = "ODR_EXECUTOR_SIMULATED_STALL"


def _chaos_hooks(spec: CellSpec) -> None:
    """Honor the simulated-crash/stall env hooks (tests and CI only)."""
    stall = os.environ.get(_STALL_ENV)  # analyzer: allow=P3 -- fault-injection hook, set only by chaos tests, never hashed
    if stall:
        prefix, _, seconds = stall.partition(":")
        if spec.run_id.startswith(prefix):
            import time

            time.sleep(float(seconds))
    crash = os.environ.get(_CRASH_ENV)  # analyzer: allow=P3 -- fault-injection hook, set only by chaos tests, never hashed
    if crash:
        prefix, marker_path, max_kills = crash.rsplit(":", 2)
        if not prefix or spec.run_id.startswith(prefix):
            try:
                with open(marker_path, "r", encoding="utf-8") as handle:
                    kills = len(handle.read().split())
            except OSError:
                kills = 0
            if kills < int(max_kills):
                with open(marker_path, "a", encoding="utf-8") as handle:
                    handle.write(f"{spec.run_id}\n")
                os.kill(os.getpid(), signal.SIGKILL)


def execute_cell(
    spec: CellSpec,
    collect_ledger: bool = False,
    telemetry_dir: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> CellOutcome:
    """Execute one cell: the deterministic unit both executors run.

    Everything the simulation needs is derived from the plain-data
    ``spec`` — including its fault plan, whose stochastic details
    resolve from the spec's seed — so this function is safe to ship to
    a worker process; the returned outcome (record + optional ledger
    run record) is likewise plain data.  ``git_rev`` is resolved by the
    caller once per plan, not per cell (workers may not even be inside
    the repo).
    """
    sweepbus.emit_cell_event(
        sweepbus.CELL_STARTED,
        run_id=spec.run_id,
        label=spec.label,
        pid=os.getpid(),
        epoch_s=host_epoch(),
        faults=bool(spec.faults),
        fault_class=spec.fault_class,
    )
    _chaos_hooks(spec)
    combo_platform = PLATFORMS[spec.platform]
    resolution = Resolution(spec.resolution)
    regulator = make_regulator(spec.regulator)
    sys_config = SystemConfig(
        benchmark=spec.benchmark,
        platform=combo_platform,
        resolution=resolution,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
    )
    telemetry = None
    if telemetry_dir is not None or collect_ledger:
        from repro.obs import Telemetry

        # Ledger records need gate-delay statistics (telemetry) and
        # events/sec (engine probe), so ledger collection forces both on.
        telemetry = Telemetry(engine_probe=collect_ledger)
    meter = ResourceMeter()
    system = CloudSystem(
        sys_config, regulator, telemetry=telemetry, fault_plan=spec.fault_plan()
    )
    result = system.run()
    events_fired: Optional[int] = None
    if telemetry is not None and telemetry.probe is not None:
        events_fired = int(telemetry.probe.events_fired)
    resources = meter.finish(events_fired=events_fired)
    wall_clock_s = resources.wall_s

    ledger_record: Optional[Dict[str, Any]] = None
    if collect_ledger:
        ledger_record = build_record(
            result,
            spec.config_payload(),
            label=spec.label,
            wall_clock_s=wall_clock_s,
            git_rev=git_rev,
        )
    if telemetry_dir is not None and telemetry is not None:
        _persist_telemetry(telemetry, spec, telemetry_dir)

    recovery: Optional[RecoveryStats] = None
    if system.faults is not None and system.faults.windows:
        recovery = recovery_stats(
            result,
            [(w.start_ms, w.end_ms) for w in system.faults.windows],
        )
    record = build_experiment_record(
        result,
        benchmark=spec.benchmark,
        config_label=spec.experiment_config().label,
        platform=combo_platform.name,
        resolution=resolution.value,
        regulator_name=regulator.name,
        fps_target=regulator.fps_target,
        qos_target=float(resolution.default_fps_target),
        recovery=recovery,
    )
    return CellOutcome(
        spec=spec,
        record=record,
        ledger_record=ledger_record,
        wall_clock_s=wall_clock_s,
        cached=False,
        resources=resources,
    )


def execute_cells(
    specs: List[CellSpec],
    collect_ledger: bool = False,
    telemetry_dir: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> List[Union[CellOutcome, CellFailure]]:
    """The chunk runner workers execute: one result per cell, in order.

    A cell that raises becomes a :class:`CellFailure` *inside* the
    worker, so one bad cell cannot poison its chunk-mates — a chunk
    future only raises when the worker itself dies (crash) or the
    caller times the chunk out.
    """
    results: List[Union[CellOutcome, CellFailure]] = []
    for spec in specs:
        try:
            results.append(
                execute_cell(
                    spec,
                    collect_ledger=collect_ledger,
                    telemetry_dir=telemetry_dir,
                    git_rev=git_rev,
                )
            )
        except Exception as exc:
            results.append(
                CellFailure(spec, f"{type(exc).__name__}: {exc}", attempts=1)
            )
    return results


def _persist_telemetry(telemetry: Any, spec: CellSpec, telemetry_dir: str) -> None:
    """Write one cell's Chrome trace + JSONL dump to ``telemetry_dir``."""
    from repro.obs import write_chrome_trace, write_jsonl

    os.makedirs(telemetry_dir, exist_ok=True)
    label = spec.experiment_config().label.replace("/", "-")
    stem = os.path.join(telemetry_dir, f"{spec.benchmark}_{label}_s{spec.seed}")
    if spec.fault_class:
        stem += f"_{spec.fault_class}"
    elif spec.faults:
        stem += "_faults"
    write_chrome_trace(telemetry, stem + ".trace.json")
    write_jsonl(telemetry, stem + ".jsonl")


class SerialExecutor:
    """Execute a plan's missing cells one after another, in-process."""

    name = "serial"

    def run(
        self,
        plan: Plan,
        store: Optional[ResultStore] = None,
        ledger: Optional[RunLedger] = None,
        telemetry_dir: Optional[str] = None,
        git_rev: Optional[str] = None,
        bus: Optional[SweepEventBus] = None,
    ) -> ExecutionReport:
        """Execute ``plan``; cached cells are recalled, the rest run.

        Every freshly executed cell is written through to ``store``
        (and appended to ``ledger``) the moment it completes, so an
        interrupted sweep keeps everything finished so far.  A cell
        that fails becomes a :class:`CellFailure` on the (then partial)
        report instead of aborting the sweep.  With a ``bus``, every
        scheduling decision and outcome is narrated as sweep events —
        observation only; the schedule is identical with or without it.
        """
        store = store if store is not None else ResultStore()
        sweep_started = host_wallclock()
        restore_quarantine = store.on_quarantine
        if bus is not None:
            bus.emit(
                sweepbus.SWEEP_BEGIN,
                cells=len(plan),
                executor=self.name,
                workers=getattr(self, "workers", 1),
            )
            store.on_quarantine = lambda run_id, path: bus.emit(
                sweepbus.CELL_QUARANTINED, run_id=run_id, path=path
            )
        outcomes: Dict[str, CellOutcome] = {}
        failures: Dict[str, CellFailure] = {}
        try:
            missing: List[CellSpec] = []
            for spec in plan:
                record = store.get(spec.run_id)
                if record is not None:
                    outcomes[spec.run_id] = CellOutcome(
                        spec=spec,
                        record=record,
                        ledger_record=None,
                        wall_clock_s=0.0,
                        cached=True,
                    )
                    if bus is not None:
                        bus.emit(sweepbus.CELL_CACHED, **_cell_fields(spec))
                else:
                    missing.append(spec)
                    if bus is not None:
                        bus.emit(sweepbus.CELL_SCHEDULED, **_cell_fields(spec))
            collect_ledger = ledger is not None
            for item in self._execute(
                missing, collect_ledger, telemetry_dir, git_rev, bus
            ):
                if isinstance(item, CellFailure):
                    failures[item.spec.run_id] = item
                    if bus is not None:
                        bus.emit(
                            sweepbus.CELL_FAILED,
                            error=item.error,
                            attempts=item.attempts,
                            **_cell_fields(item.spec),
                        )
                    continue
                store.put(item.spec.run_id, item.record, exec_meta=_exec_meta(item))
                if ledger is not None and item.ledger_record is not None:
                    ledger.append(item.ledger_record)
                outcomes[item.spec.run_id] = item
                if bus is not None:
                    resources = (
                        item.resources.to_dict() if item.resources is not None else None
                    )
                    bus.emit(
                        sweepbus.CELL_FINISHED,
                        wall_s=item.wall_clock_s,
                        resources=resources,
                        **_cell_fields(item.spec),
                    )
        finally:
            store.on_quarantine = restore_quarantine
        if bus is not None:
            bus.emit(
                sweepbus.SWEEP_END,
                executed=sum(1 for o in outcomes.values() if not o.cached),
                cached=sum(1 for o in outcomes.values() if o.cached),
                failed=len(failures),
                wall_s=host_wallclock() - sweep_started,
            )
        return ExecutionReport(
            outcomes=tuple(
                outcomes[run_id] for run_id in plan.run_ids if run_id in outcomes
            ),
            failures=tuple(
                failures[run_id] for run_id in plan.run_ids if run_id in failures
            ),
        )

    # -- strategy ----------------------------------------------------------

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
        bus: Optional[SweepEventBus] = None,
    ) -> Iterator[Union[CellOutcome, CellFailure]]:
        if bus is not None:
            # In-process execution: cell events go straight to the bus.
            sweepbus.attach_worker_sink(
                lambda kind, fields: bus.emit(kind, **fields)
            )
        try:
            for spec in specs:
                try:
                    yield execute_cell(
                        spec,
                        collect_ledger=collect_ledger,
                        telemetry_dir=telemetry_dir,
                        git_rev=git_rev,
                    )
                except Exception as exc:
                    yield CellFailure(spec, f"{type(exc).__name__}: {exc}", attempts=1)
        finally:
            if bus is not None:
                sweepbus.detach_worker_sink()


class ParallelExecutor(SerialExecutor):
    """Fan a plan's missing cells out over a worker pool.

    Workers execute :func:`execute_cells` on chunks of plain
    :class:`CellSpec` payloads; results are harvested in submission
    order, so store writes and ledger appends happen incrementally
    (retried cells append after their retry completes).  Output is
    bit-identical to :class:`SerialExecutor` — the DES is
    deterministic in the spec.

    ``cell_timeout_s`` bounds the wait for any single cell's result
    (a cell that exceeds it is reported failed; its worker is
    abandoned at pool respawn) and forces one cell per submission.
    ``chunk`` sets cells-per-submission explicitly (default: auto —
    see :func:`~repro.experiments.scheduling.resolve_chunk`).  A
    worker crash breaks the pool
    (:class:`~concurrent.futures.BrokenExecutor`): finished results
    are harvested, and the lost cells re-run individually in a
    respawned pool until each has had ``max_attempts`` executions.

    By default each ``run`` spins up (and tears down) its own
    :class:`~repro.experiments.pool.WorkerPool`.  Pass ``pool=`` to
    run against a caller-owned pool instead — the service gateway
    keeps one warm pool for its whole lifetime and routes every job
    through it, paying worker spawn once per server.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int,
        cell_timeout_s: Optional[float] = None,
        max_attempts: int = 2,
        chunk: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError("cell timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if chunk is not None and chunk < 1:
            raise ValueError("chunk must be >= 1")
        self.workers = workers
        self.cell_timeout_s = cell_timeout_s
        self.max_attempts = max_attempts
        self.chunk = chunk
        #: A caller-owned pool to run against (``None`` → per-run pool).
        self.pool = pool

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
        bus: Optional[SweepEventBus] = None,
    ) -> Iterator[Union[CellOutcome, CellFailure]]:
        workers = min(self.workers, len(specs))
        if workers <= 1 and self.pool is None:
            yield from super()._execute(
                specs, collect_ledger, telemetry_dir, git_rev, bus
            )
            return
        run_chunk = partial(
            execute_cells,
            collect_ledger=collect_ledger,
            telemetry_dir=telemetry_dir,
            git_rev=git_rev,
        )
        chunk = resolve_chunk(len(specs), workers, self.chunk, self.cell_timeout_s)
        pool = self.pool
        owned = pool is None
        if pool is None:
            pool = WorkerPool(workers, events=bus is not None)
        previous_sink: Any = None
        if bus is not None:
            # Route worker-side events (worker_spawned, cell_started,
            # resources) into this run's bus for the duration of the
            # run; a borrowed pool gets its previous sink back after.
            previous_sink = pool.attach_sink(
                lambda kind, fields: bus.emit(kind, **fields)
            )
        try:
            yield from schedule_cells(
                pool,
                specs,
                run_chunk,
                chunk=chunk,
                cell_timeout_s=self.cell_timeout_s,
                max_attempts=self.max_attempts,
                bus=bus,
            )
        finally:
            if bus is not None:
                pool.attach_sink(previous_sink)
            if owned:
                pool.close()


def make_executor(
    workers: int = 1,
    cell_timeout_s: Optional[float] = None,
    chunk: Optional[int] = None,
) -> SerialExecutor:
    """``workers <= 1`` → serial; otherwise a pool of ``workers``."""
    if workers > 1:
        return ParallelExecutor(workers, cell_timeout_s=cell_timeout_s, chunk=chunk)
    return SerialExecutor()
