"""The execution layer: run a plan's cells, serially or in parallel.

An executor takes a :class:`~repro.experiments.plan.Plan`, skips every
cell the :class:`~repro.experiments.store.ResultStore` already holds,
executes the missing ones, and returns an :class:`ExecutionReport` in
plan order.  Two strategies ship:

* :class:`SerialExecutor` — one cell after another, in-process; the
  behaviour the old lazy ``Runner`` had, made explicit.
* :class:`ParallelExecutor` — a stdlib
  :class:`~concurrent.futures.ProcessPoolExecutor` fan-out
  (``--workers N``).  Each worker runs the same deterministic
  discrete-event simulation from the same :class:`CellSpec`, so the
  records it returns are **bit-identical** to a serial run — cells
  share no state, and every RNG stream is seeded from the spec alone.

Each finished cell is written through to the store and appended to the
run ledger *as it completes*, so an interrupted sweep still persists
every finished cell.

**Fault tolerance.**  A sweep survives its own failures: a cell that
raises becomes a :class:`CellFailure` on the report instead of
aborting the plan; the parallel executor additionally takes a
per-cell timeout (``cell_timeout_s``) and retries cells lost to a
worker crash (:class:`~concurrent.futures.process.BrokenProcessPool`)
up to ``max_attempts`` times in a fresh pool.  The report's
:attr:`~ExecutionReport.failures` enumerate what ultimately failed;
:attr:`~ExecutionReport.ok` gates exit codes, and a follow-up
``--resume`` run re-executes only the missing cells, bit-identically.

The cell body (:func:`execute_cell`) is the single place a cell turns
into numbers: it is what workers run, what the serial path runs, and
what ``Runner.run_cell`` ultimately calls.

**Sweep telemetry.**  Executors optionally narrate themselves into a
:class:`~repro.obs.sweep.SweepEventBus` (``bus=``): cell
scheduled/cached/started/finished/failed/retried/timed-out events,
pool openings and breakages, worker spawns, and store quarantines.
Workers measure per-cell resources
(:class:`~repro.obs.sweep.CellResources`) and ship live events back
over a multiprocessing queue the parent drains.  The plane is strictly
out-of-band — with ``bus=None`` (the default) every hook site is one
``is None`` branch and results are bit-identical either way.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.plan import CellSpec, Plan
from repro.experiments.record import ExperimentRecord, build_experiment_record
from repro.experiments.store import ResultStore
from repro.metrics.recovery import RecoveryStats, recovery_stats
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.probes import host_epoch, host_wallclock
from repro.obs.runmeta import build_record
from repro.obs.sweep import CellResources, ResourceMeter, SweepEventBus
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution

__all__ = [
    "CellFailure",
    "CellOutcome",
    "ExecutionError",
    "ExecutionReport",
    "ParallelExecutor",
    "SerialExecutor",
    "execute_cell",
    "make_executor",
]

#: Test/CI hook: ``<run_id_prefix>:<marker_file>:<max_kills>`` — a worker
#: about to execute a matching cell SIGKILLs itself (at most
#: ``max_kills`` times across the sweep, tracked in ``marker_file``),
#: simulating a mid-sweep worker crash for the retry/resume paths.
_CRASH_ENV = "ODR_EXECUTOR_SIMULATED_CRASH"
#: Test hook: ``<run_id_prefix>:<seconds>`` — a worker executing a
#: matching cell sleeps first, simulating a hung cell for the timeout path.
_STALL_ENV = "ODR_EXECUTOR_SIMULATED_STALL"


@dataclass(frozen=True)
class CellOutcome:
    """One plan cell after execution (or recall from the store)."""

    spec: CellSpec
    record: ExperimentRecord
    #: The full ledger run record, when the cell executed with ledger
    #: collection on; ``None`` for cached cells (already appended by
    #: whichever run produced them).
    ledger_record: Optional[Dict[str, Any]]
    #: Host seconds this cell's simulation took (0.0 when cached).
    wall_clock_s: float
    #: ``True`` when the result came from the store, not an execution.
    cached: bool
    #: Worker-side resource telemetry (wall, CPU user/sys, peak RSS,
    #: events/sec) for executed cells; ``None`` for cached cells.
    resources: Optional[CellResources] = None


@dataclass(frozen=True)
class CellFailure:
    """One plan cell that did not produce a record."""

    spec: CellSpec
    #: Human-readable cause (exception type + message, timeout, crash).
    error: str
    #: Executions attempted before giving up.
    attempts: int = 1


@dataclass(frozen=True)
class ExecutionReport:
    """All outcomes of one executed plan, in plan order.

    A report with :attr:`failures` is *partial*: every cell in
    :attr:`outcomes` completed (and persisted, when a store/ledger was
    attached); the failed cells are enumerated with their cause, and a
    later ``--resume`` run needs to execute only those.
    """

    outcomes: Tuple[CellOutcome, ...]
    failures: Tuple[CellFailure, ...] = ()

    @property
    def ok(self) -> bool:
        """True when every planned cell produced a record."""
        return not self.failures

    @property
    def executed(self) -> int:
        """Cells that actually simulated in this run."""
        return sum(1 for o in self.outcomes if not o.cached)

    @property
    def cached(self) -> int:
        """Cells recalled from the result store."""
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def cell_seconds(self) -> float:
        """Summed per-cell wall clock (CPU-time-like; overlaps in parallel)."""
        return sum(o.wall_clock_s for o in self.outcomes)

    def records(self) -> List[ExperimentRecord]:
        return [o.record for o in self.outcomes]

    def outcome_for(self, run_id: str) -> CellOutcome:
        for outcome in self.outcomes:
            if outcome.spec.run_id == run_id:
                return outcome
        raise KeyError(run_id)

    def failure_for(self, run_id: str) -> CellFailure:
        for failure in self.failures:
            if failure.spec.run_id == run_id:
                return failure
        raise KeyError(run_id)

    def describe(self) -> str:
        text = (
            f"{len(self.outcomes)} cell(s): executed={self.executed} "
            f"cached={self.cached} cell_seconds={self.cell_seconds:.2f}"
        )
        if self.failures:
            text += f" failed={len(self.failures)}"
        return text


class ExecutionError(RuntimeError):
    """A plan finished with failed cells (raised by ``Runner.run_plan``)."""

    def __init__(self, report: ExecutionReport) -> None:
        self.report = report
        detail = "; ".join(
            f"{failure.spec.label}: {failure.error}" for failure in report.failures
        )
        super().__init__(
            f"{len(report.failures)} of "
            f"{len(report.outcomes) + len(report.failures)} cell(s) failed: {detail}"
        )


def _chaos_hooks(spec: CellSpec) -> None:
    """Honor the simulated-crash/stall env hooks (tests and CI only)."""
    stall = os.environ.get(_STALL_ENV)  # analyzer: allow=P3 -- fault-injection hook, set only by chaos tests, never hashed
    if stall:
        prefix, _, seconds = stall.partition(":")
        if spec.run_id.startswith(prefix):
            import time

            time.sleep(float(seconds))
    crash = os.environ.get(_CRASH_ENV)  # analyzer: allow=P3 -- fault-injection hook, set only by chaos tests, never hashed
    if crash:
        prefix, marker_path, max_kills = crash.rsplit(":", 2)
        if not prefix or spec.run_id.startswith(prefix):
            try:
                with open(marker_path, "r", encoding="utf-8") as handle:
                    kills = len(handle.read().split())
            except OSError:
                kills = 0
            if kills < int(max_kills):
                with open(marker_path, "a", encoding="utf-8") as handle:
                    handle.write(f"{spec.run_id}\n")
                os.kill(os.getpid(), signal.SIGKILL)


def execute_cell(
    spec: CellSpec,
    collect_ledger: bool = False,
    telemetry_dir: Optional[str] = None,
    git_rev: Optional[str] = None,
) -> CellOutcome:
    """Execute one cell: the deterministic unit both executors run.

    Everything the simulation needs is derived from the plain-data
    ``spec`` — including its fault plan, whose stochastic details
    resolve from the spec's seed — so this function is safe to ship to
    a worker process; the returned outcome (record + optional ledger
    run record) is likewise plain data.  ``git_rev`` is resolved by the
    caller once per plan, not per cell (workers may not even be inside
    the repo).
    """
    sweepbus.emit_cell_event(
        sweepbus.CELL_STARTED,
        run_id=spec.run_id,
        label=spec.label,
        pid=os.getpid(),
        epoch_s=host_epoch(),
        faults=bool(spec.faults),
        fault_class=spec.fault_class,
    )
    _chaos_hooks(spec)
    combo_platform = PLATFORMS[spec.platform]
    resolution = Resolution(spec.resolution)
    regulator = make_regulator(spec.regulator)
    sys_config = SystemConfig(
        benchmark=spec.benchmark,
        platform=combo_platform,
        resolution=resolution,
        seed=spec.seed,
        duration_ms=spec.duration_ms,
        warmup_ms=spec.warmup_ms,
    )
    telemetry = None
    if telemetry_dir is not None or collect_ledger:
        from repro.obs import Telemetry

        # Ledger records need gate-delay statistics (telemetry) and
        # events/sec (engine probe), so ledger collection forces both on.
        telemetry = Telemetry(engine_probe=collect_ledger)
    meter = ResourceMeter()
    system = CloudSystem(
        sys_config, regulator, telemetry=telemetry, fault_plan=spec.fault_plan()
    )
    result = system.run()
    events_fired: Optional[int] = None
    if telemetry is not None and telemetry.probe is not None:
        events_fired = int(telemetry.probe.events_fired)
    resources = meter.finish(events_fired=events_fired)
    wall_clock_s = resources.wall_s

    ledger_record: Optional[Dict[str, Any]] = None
    if collect_ledger:
        ledger_record = build_record(
            result,
            spec.config_payload(),
            label=spec.label,
            wall_clock_s=wall_clock_s,
            git_rev=git_rev,
        )
    if telemetry_dir is not None and telemetry is not None:
        _persist_telemetry(telemetry, spec, telemetry_dir)

    recovery: Optional[RecoveryStats] = None
    if system.faults is not None and system.faults.windows:
        recovery = recovery_stats(
            result,
            [(w.start_ms, w.end_ms) for w in system.faults.windows],
        )
    record = build_experiment_record(
        result,
        benchmark=spec.benchmark,
        config_label=spec.experiment_config().label,
        platform=combo_platform.name,
        resolution=resolution.value,
        regulator_name=regulator.name,
        fps_target=regulator.fps_target,
        qos_target=float(resolution.default_fps_target),
        recovery=recovery,
    )
    return CellOutcome(
        spec=spec,
        record=record,
        ledger_record=ledger_record,
        wall_clock_s=wall_clock_s,
        cached=False,
        resources=resources,
    )


def _persist_telemetry(telemetry: Any, spec: CellSpec, telemetry_dir: str) -> None:
    """Write one cell's Chrome trace + JSONL dump to ``telemetry_dir``."""
    from repro.obs import write_chrome_trace, write_jsonl

    os.makedirs(telemetry_dir, exist_ok=True)
    label = spec.experiment_config().label.replace("/", "-")
    stem = os.path.join(telemetry_dir, f"{spec.benchmark}_{label}_s{spec.seed}")
    if spec.fault_class:
        stem += f"_{spec.fault_class}"
    elif spec.faults:
        stem += "_faults"
    write_chrome_trace(telemetry, stem + ".trace.json")
    write_jsonl(telemetry, stem + ".jsonl")


class SerialExecutor:
    """Execute a plan's missing cells one after another, in-process."""

    name = "serial"

    def run(
        self,
        plan: Plan,
        store: Optional[ResultStore] = None,
        ledger: Optional[RunLedger] = None,
        telemetry_dir: Optional[str] = None,
        git_rev: Optional[str] = None,
        bus: Optional[SweepEventBus] = None,
    ) -> ExecutionReport:
        """Execute ``plan``; cached cells are recalled, the rest run.

        Every freshly executed cell is written through to ``store``
        (and appended to ``ledger``) the moment it completes, so an
        interrupted sweep keeps everything finished so far.  A cell
        that fails becomes a :class:`CellFailure` on the (then partial)
        report instead of aborting the sweep.  With a ``bus``, every
        scheduling decision and outcome is narrated as sweep events —
        observation only; the schedule is identical with or without it.
        """
        store = store if store is not None else ResultStore()
        sweep_started = host_wallclock()
        restore_quarantine = store.on_quarantine
        if bus is not None:
            bus.emit(
                sweepbus.SWEEP_BEGIN,
                cells=len(plan),
                executor=self.name,
                workers=getattr(self, "workers", 1),
            )
            store.on_quarantine = lambda run_id, path: bus.emit(
                sweepbus.CELL_QUARANTINED, run_id=run_id, path=path
            )
        outcomes: Dict[str, CellOutcome] = {}
        failures: Dict[str, CellFailure] = {}
        try:
            missing: List[CellSpec] = []
            for spec in plan:
                record = store.get(spec.run_id)
                if record is not None:
                    outcomes[spec.run_id] = CellOutcome(
                        spec=spec,
                        record=record,
                        ledger_record=None,
                        wall_clock_s=0.0,
                        cached=True,
                    )
                    if bus is not None:
                        bus.emit(sweepbus.CELL_CACHED, **_cell_fields(spec))
                else:
                    missing.append(spec)
                    if bus is not None:
                        bus.emit(sweepbus.CELL_SCHEDULED, **_cell_fields(spec))
            collect_ledger = ledger is not None
            for item in self._execute(
                missing, collect_ledger, telemetry_dir, git_rev, bus
            ):
                if isinstance(item, CellFailure):
                    failures[item.spec.run_id] = item
                    if bus is not None:
                        bus.emit(
                            sweepbus.CELL_FAILED,
                            error=item.error,
                            attempts=item.attempts,
                            **_cell_fields(item.spec),
                        )
                    continue
                store.put(item.spec.run_id, item.record, exec_meta=_exec_meta(item))
                if ledger is not None and item.ledger_record is not None:
                    ledger.append(item.ledger_record)
                outcomes[item.spec.run_id] = item
                if bus is not None:
                    resources = (
                        item.resources.to_dict() if item.resources is not None else None
                    )
                    bus.emit(
                        sweepbus.CELL_FINISHED,
                        wall_s=item.wall_clock_s,
                        resources=resources,
                        **_cell_fields(item.spec),
                    )
        finally:
            store.on_quarantine = restore_quarantine
        if bus is not None:
            bus.emit(
                sweepbus.SWEEP_END,
                executed=sum(1 for o in outcomes.values() if not o.cached),
                cached=sum(1 for o in outcomes.values() if o.cached),
                failed=len(failures),
                wall_s=host_wallclock() - sweep_started,
            )
        return ExecutionReport(
            outcomes=tuple(
                outcomes[run_id] for run_id in plan.run_ids if run_id in outcomes
            ),
            failures=tuple(
                failures[run_id] for run_id in plan.run_ids if run_id in failures
            ),
        )

    # -- strategy ----------------------------------------------------------

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
        bus: Optional[SweepEventBus] = None,
    ) -> Iterator[Union[CellOutcome, CellFailure]]:
        if bus is not None:
            # In-process execution: cell events go straight to the bus.
            sweepbus.attach_worker_sink(
                lambda kind, fields: bus.emit(kind, **fields)
            )
        try:
            for spec in specs:
                try:
                    yield execute_cell(
                        spec,
                        collect_ledger=collect_ledger,
                        telemetry_dir=telemetry_dir,
                        git_rev=git_rev,
                    )
                except Exception as exc:
                    yield CellFailure(spec, f"{type(exc).__name__}: {exc}", attempts=1)
        finally:
            if bus is not None:
                sweepbus.detach_worker_sink()


def _cell_fields(spec: CellSpec) -> Dict[str, Any]:
    """The identifying fields every cell event carries."""
    return {
        "run_id": spec.run_id,
        "label": spec.label,
        "faults": bool(spec.faults),
        "fault_class": spec.fault_class,
    }


def _exec_meta(outcome: CellOutcome) -> Optional[Dict[str, Any]]:
    """Execution-cost metadata persisted with a freshly executed cell."""
    if outcome.cached:
        return None
    meta: Dict[str, Any] = {"wall_clock_s": outcome.wall_clock_s}
    if outcome.resources is not None:
        meta["resources"] = outcome.resources.to_dict()
    return meta


def _queue_sink(queue: Any) -> Any:
    """A worker sink that ships (kind, fields) tuples over ``queue``."""

    def sink(kind: str, fields: Dict[str, Any]) -> None:
        queue.put((kind, fields))

    return sink


def _sweep_worker_init(queue: Any) -> None:
    """Pool-worker initializer: route cell events into the parent's queue."""
    sweepbus.attach_worker_sink(_queue_sink(queue))
    sweepbus.emit_cell_event(
        sweepbus.WORKER_SPAWNED, pid=os.getpid(), epoch_s=host_epoch()
    )


class _EventQueueDrain:
    """Parent-side pump: a manager queue drained into the bus by a thread.

    The queue lives in a ``multiprocessing.Manager`` server process, so
    a SIGKILLed pool worker cannot corrupt it mid-``put`` — the drain
    keeps working through pool breakage and is stopped (sentinel +
    join) when the executor finishes, hung workers notwithstanding.
    """

    def __init__(self, bus: SweepEventBus) -> None:
        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self._thread = threading.Thread(
            target=self._pump, args=(bus,), name="sweep-event-drain", daemon=True
        )
        self._thread.start()

    def _pump(self, bus: SweepEventBus) -> None:
        while True:
            try:
                item = self.queue.get()
            except (EOFError, OSError):  # manager went away
                return
            if item is None:
                return
            kind, fields = item
            bus.emit(kind, **fields)

    def stop(self) -> None:
        """Drain remaining events, stop the thread, shut the manager down."""
        try:
            self.queue.put(None)
        except Exception:
            pass
        self._thread.join(timeout=10.0)
        try:
            self._manager.shutdown()
        except Exception:
            pass


class ParallelExecutor(SerialExecutor):
    """Fan a plan's missing cells out over a process pool.

    Workers execute :func:`execute_cell` on plain :class:`CellSpec`
    payloads; results are harvested in plan order, so store writes and
    ledger appends happen incrementally (retried cells append after
    their retry completes).  Output is bit-identical to
    :class:`SerialExecutor` — the DES is deterministic in the spec.

    ``cell_timeout_s`` bounds the wait for any single cell's result
    (a cell that exceeds it is reported failed; its worker is
    abandoned at shutdown).  A worker crash breaks the whole pool
    (:class:`~concurrent.futures.BrokenExecutor`): finished results
    are harvested, and the unfinished cells re-run in a fresh pool
    until each has had ``max_attempts`` executions.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int,
        cell_timeout_s: Optional[float] = None,
        max_attempts: int = 2,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if cell_timeout_s is not None and cell_timeout_s <= 0:
            raise ValueError("cell timeout must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.workers = workers
        self.cell_timeout_s = cell_timeout_s
        self.max_attempts = max_attempts

    def _execute(
        self,
        specs: Sequence[CellSpec],
        collect_ledger: bool,
        telemetry_dir: Optional[str],
        git_rev: Optional[str],
        bus: Optional[SweepEventBus] = None,
    ) -> Iterator[Union[CellOutcome, CellFailure]]:
        workers = min(self.workers, len(specs))
        if workers <= 1:
            yield from super()._execute(
                specs, collect_ledger, telemetry_dir, git_rev, bus
            )
            return
        run_one = partial(
            execute_cell,
            collect_ledger=collect_ledger,
            telemetry_dir=telemetry_dir,
            git_rev=git_rev,
        )
        drain = _EventQueueDrain(bus) if bus is not None else None
        try:
            attempts: Dict[str, int] = {spec.run_id: 0 for spec in specs}
            queue: List[CellSpec] = list(specs)
            while queue:
                batch, queue = queue, []
                for spec in batch:
                    attempts[spec.run_id] += 1
                pool_workers = min(workers, len(batch))
                if drain is not None:
                    pool = ProcessPoolExecutor(
                        max_workers=pool_workers,
                        initializer=_sweep_worker_init,
                        initargs=(drain.queue,),
                    )
                else:
                    pool = ProcessPoolExecutor(max_workers=pool_workers)
                if bus is not None:
                    bus.emit(
                        sweepbus.POOL_OPENED, workers=pool_workers, batch=len(batch)
                    )
                futures: List[Tuple[CellSpec, "Future[CellOutcome]"]] = [
                    (spec, pool.submit(run_one, spec)) for spec in batch
                ]
                hung = False
                pool_broken = False
                for spec, future in futures:
                    if pool_broken:
                        # The pool already broke: cells that finished before
                        # the crash still hold results; the rest re-queue.
                        if future.done() and future.exception() is None:
                            yield future.result()
                        else:
                            retry = self._requeue(
                                spec, attempts[spec.run_id], queue, bus
                            )
                            if retry is not None:
                                yield retry
                        continue
                    try:
                        yield future.result(timeout=self.cell_timeout_s)
                    except FuturesTimeoutError:
                        hung = True
                        if bus is not None:
                            bus.emit(
                                sweepbus.CELL_TIMED_OUT,
                                timeout_s=self.cell_timeout_s,
                                **_cell_fields(spec),
                            )
                        yield CellFailure(
                            spec,
                            f"timed out after {self.cell_timeout_s:g} s",
                            attempts=attempts[spec.run_id],
                        )
                    except BrokenExecutor:
                        pool_broken = True
                        if bus is not None:
                            bus.emit(sweepbus.POOL_BROKEN)
                        retry = self._requeue(spec, attempts[spec.run_id], queue, bus)
                        if retry is not None:
                            yield retry
                    except Exception as exc:
                        yield CellFailure(
                            spec,
                            f"{type(exc).__name__}: {exc}",
                            attempts=attempts[spec.run_id],
                        )
                # A hung worker would block a waiting shutdown forever;
                # cancel what never started and leave it behind.
                pool.shutdown(wait=not hung, cancel_futures=True)
        finally:
            if drain is not None:
                drain.stop()

    def _requeue(
        self,
        spec: CellSpec,
        attempted: int,
        queue: List[CellSpec],
        bus: Optional[SweepEventBus] = None,
    ) -> Optional[CellFailure]:
        """Re-queue a crash casualty, or fail it after ``max_attempts``."""
        if attempted < self.max_attempts:
            queue.append(spec)
            if bus is not None:
                bus.emit(
                    sweepbus.CELL_RETRIED, attempt=attempted, **_cell_fields(spec)
                )
            return None
        return CellFailure(
            spec,
            f"worker crashed (gave up after {attempted} attempt(s))",
            attempts=attempted,
        )


def make_executor(
    workers: int = 1, cell_timeout_s: Optional[float] = None
) -> SerialExecutor:
    """``workers <= 1`` → serial; otherwise a pool of ``workers``."""
    if workers > 1:
        return ParallelExecutor(workers, cell_timeout_s=cell_timeout_s)
    return SerialExecutor()
