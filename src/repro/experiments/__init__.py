"""Experiment harness: the paper's evaluation, regenerated.

The paper evaluates 6 benchmarks × 28 configurations (2 resolutions ×
2 platforms × {NoReg, Int, RVS, ODR} × {Max, 30/60}).  This package
enumerates that matrix (:mod:`repro.experiments.config`) and runs it
through an explicit **plan → execute → render** pipeline:

* **plan** (:mod:`repro.experiments.plan`) — consumers declare their
  cell demands as content-addressed :class:`CellSpec` values collected
  into a deduplicated :class:`Plan`;
* **execute** (:mod:`repro.experiments.executor`) — a
  :class:`SerialExecutor` or :class:`ParallelExecutor` (process pool)
  runs the plan's missing cells, recalling completed ones from the
  run_id-keyed :class:`ResultStore` (:mod:`repro.experiments.store`);
* **render** — every table and figure of Sections 4 and 6
  (:mod:`repro.experiments.figures`, :mod:`repro.experiments.tables`,
  :mod:`repro.experiments.userstudy`) reads records back through the
  compatible :class:`Runner` facade.

Each generator returns structured data (plain dicts/dataclasses) plus
an ASCII rendering, so results can be consumed programmatically or
printed; ``python -m repro`` exposes them from the command line (see
``docs/EXECUTION.md``).
"""

from repro.experiments.config import (
    ExperimentConfig,
    PlatformRes,
    paper_configuration_matrix,
    platform_res_combos,
)
from repro.experiments.chaos import (
    ResilienceRow,
    chaos_demands,
    render_resilience,
    resilience_payload,
    resilience_rows,
)
from repro.experiments.executor import (
    CellFailure,
    CellOutcome,
    ExecutionError,
    ExecutionReport,
    ParallelExecutor,
    SerialExecutor,
    execute_cell,
    execute_cells,
    make_executor,
)
from repro.experiments.pool import WorkerPool
from repro.experiments.scheduling import resolve_chunk, schedule_cells
from repro.experiments.plan import (
    CellSpec,
    Plan,
    bench_demands,
    group_demands,
    matrix_demands,
)
from repro.experiments.record import ExperimentRecord
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.experiments.store import ResultStore

__all__ = [
    "CellFailure",
    "CellOutcome",
    "CellSpec",
    "ExecutionError",
    "ExecutionReport",
    "ExperimentConfig",
    "ExperimentRecord",
    "ParallelExecutor",
    "Plan",
    "PlatformRes",
    "ResilienceRow",
    "ResultStore",
    "Runner",
    "SerialExecutor",
    "WorkerPool",
    "bench_demands",
    "chaos_demands",
    "execute_cell",
    "execute_cells",
    "format_table",
    "group_demands",
    "make_executor",
    "matrix_demands",
    "resolve_chunk",
    "schedule_cells",
    "paper_configuration_matrix",
    "platform_res_combos",
    "render_resilience",
    "resilience_payload",
    "resilience_rows",
]
