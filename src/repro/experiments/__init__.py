"""Experiment harness: the paper's evaluation, regenerated.

The paper evaluates 6 benchmarks × 28 configurations (2 resolutions ×
2 platforms × {NoReg, Int, RVS, ODR} × {Max, 30/60}).  This package
enumerates that matrix (:mod:`repro.experiments.config`), runs it
(:mod:`repro.experiments.runner`), and renders every table and figure
of Sections 4 and 6 (:mod:`repro.experiments.figures`,
:mod:`repro.experiments.tables`, :mod:`repro.experiments.userstudy`).

Each generator returns structured data (plain dicts/dataclasses) plus
an ASCII rendering, so results can be consumed programmatically or
printed; ``python -m repro`` exposes them from the command line.
"""

from repro.experiments.config import (
    ExperimentConfig,
    PlatformRes,
    paper_configuration_matrix,
    platform_res_combos,
)
from repro.experiments.runner import ExperimentRecord, Runner
from repro.experiments.report import format_table

__all__ = [
    "ExperimentConfig",
    "ExperimentRecord",
    "PlatformRes",
    "Runner",
    "format_table",
    "paper_configuration_matrix",
    "platform_res_combos",
]
