"""CSV export of experiment records.

Flattens :class:`~repro.experiments.record.ExperimentRecord` objects —
including their box statistics and hardware sub-reports — into one CSV
row each, for analysis outside this library.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Union

from repro.experiments.record import ExperimentRecord

__all__ = ["EXPORT_FIELDS", "record_to_row", "records_to_csv"]

EXPORT_FIELDS = [
    "benchmark",
    "platform",
    "resolution",
    "regulator",
    "fps_target",
    "render_fps",
    "encode_fps",
    "client_fps",
    "client_fps_p1",
    "client_fps_p99",
    "fps_gap_mean",
    "fps_gap_max",
    "mtp_mean_ms",
    "mtp_p99_ms",
    "qos_target",
    "qos_satisfaction",
    "row_miss_rate",
    "read_access_ns",
    "ipc",
    "power_w",
    "bandwidth_mbps",
    "frames_rendered",
    "frames_dropped",
]


def record_to_row(record: ExperimentRecord) -> dict:
    """Flatten one record into a CSV-ready dict."""
    return {
        "benchmark": record.benchmark,
        "platform": record.platform,
        "resolution": record.resolution,
        "regulator": record.regulator,
        "fps_target": "" if record.fps_target is None else f"{record.fps_target:g}",
        "render_fps": f"{record.render_fps:.3f}",
        "encode_fps": f"{record.encode_fps:.3f}",
        "client_fps": f"{record.client_fps:.3f}",
        "client_fps_p1": f"{record.client_fps_box.p1:.3f}",
        "client_fps_p99": f"{record.client_fps_box.p99:.3f}",
        "fps_gap_mean": f"{record.fps_gap_mean:.3f}",
        "fps_gap_max": f"{record.fps_gap_max:.3f}",
        "mtp_mean_ms": "" if record.mtp_mean_ms is None else f"{record.mtp_mean_ms:.3f}",
        "mtp_p99_ms": "" if record.mtp_box is None else f"{record.mtp_box.p99:.3f}",
        "qos_target": f"{record.qos_target:g}",
        "qos_satisfaction": f"{record.qos_satisfaction:.4f}",
        "row_miss_rate": f"{record.row_miss_rate:.4f}",
        "read_access_ns": f"{record.read_access_ns:.2f}",
        "ipc": f"{record.ipc:.4f}",
        "power_w": f"{record.power_w:.2f}",
        "bandwidth_mbps": f"{record.bandwidth_mbps:.2f}",
        "frames_rendered": str(record.frames_rendered),
        "frames_dropped": str(record.frames_dropped),
    }


def records_to_csv(
    records: Iterable[ExperimentRecord],
    destination: Union[str, io.TextIOBase],
) -> int:
    """Write records to CSV; returns the row count."""
    rows: List[dict] = [record_to_row(r) for r in records]
    own = isinstance(destination, (str, bytes))
    handle = open(destination, "w", newline="") if own else destination
    try:
        writer = csv.DictWriter(handle, fieldnames=EXPORT_FIELDS)
        writer.writeheader()
        writer.writerows(rows)
    finally:
        if own:
            handle.close()
    return len(rows)
