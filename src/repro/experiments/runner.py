"""Run experiment cells and collect flat measurement records.

:class:`Runner` executes (benchmark × configuration) cells, memoizing
results so figure generators that share cells (most of them) do not
re-simulate.  An :class:`ExperimentRecord` carries every number the
paper reports for a run: per-stage FPS, FPS-gap statistics, MtP
latency, windowed QoS satisfaction, DRAM/IPC/power, and bandwidth.

With ``telemetry_dir`` set, every executed cell also runs under a
:class:`repro.obs.Telemetry` and persists its full telemetry next to
the CSV exports: a Chrome-trace JSON (Perfetto-loadable) and a JSONL
dump per cell (see :mod:`repro.obs.exporters`).

With a ``ledger`` (or ``ledger_dir``) attached, every executed cell
additionally appends a self-describing run record — config hash, git
revision, seed, summary metrics, per-frame distributions, engine
statistics, wall-clock cost — to the append-only run ledger
(:mod:`repro.obs.ledger`), the store the regression sentinel compares
against.  Ledger runs always collect telemetry with an engine probe:
the record needs gate-delay statistics and events/sec.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.experiments.config import ExperimentConfig, PlatformRes
from repro.hardware import HardwareReport, evaluate_hardware
from repro.metrics import BoxStats
from repro.obs.ledger import RunLedger
from repro.obs.probes import host_wallclock
from repro.obs.runmeta import build_record, git_revision
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import BENCHMARKS

__all__ = ["ExperimentRecord", "Runner"]


@dataclass(frozen=True)
class ExperimentRecord:
    """All measurements of one (benchmark, configuration, seed) run."""

    benchmark: str
    config_label: str
    platform: str
    resolution: str
    regulator: str
    fps_target: Optional[float]

    render_fps: float
    encode_fps: float
    client_fps: float
    client_fps_box: BoxStats
    fps_gap_mean: float
    fps_gap_max: float

    mtp_mean_ms: Optional[float]
    mtp_box: Optional[BoxStats]

    qos_target: float
    qos_satisfaction: float

    hardware: HardwareReport
    bandwidth_mbps: float
    frames_rendered: int
    frames_dropped: int

    @property
    def power_w(self) -> float:
        return self.hardware.power.total_w

    @property
    def ipc(self) -> float:
        return self.hardware.ipc

    @property
    def row_miss_rate(self) -> float:
        return self.hardware.dram.row_miss_rate

    @property
    def read_access_ns(self) -> float:
        return self.hardware.dram.read_access_ns


class Runner:
    """Memoizing executor for the evaluation matrix."""

    def __init__(
        self,
        seed: int = 1,
        duration_ms: float = 20000.0,
        warmup_ms: float = 3000.0,
        telemetry_dir: Optional[str] = None,
        ledger: Optional[Union[RunLedger, str]] = None,
    ):
        self.seed = seed
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        #: When set, each executed cell persists a Chrome trace and a
        #: JSONL telemetry dump into this directory.
        self.telemetry_dir = telemetry_dir
        #: When set, each executed cell appends a run record here.  A
        #: string is taken as the ledger directory.
        self.ledger: Optional[RunLedger] = None
        self._git_rev: Optional[str] = None
        if ledger is not None:
            self.attach_ledger(ledger)
        self._cache: Dict[Tuple[str, str, int], ExperimentRecord] = {}

    def attach_ledger(self, ledger: Union[RunLedger, str]) -> RunLedger:
        """Start appending every executed cell's run record to ``ledger``."""
        self.ledger = RunLedger(ledger) if isinstance(ledger, str) else ledger
        self._git_rev = git_revision()
        return self.ledger

    def run_cell(
        self, benchmark: str, config: ExperimentConfig, seed: Optional[int] = None
    ) -> ExperimentRecord:
        """Run (or recall) one benchmark × configuration cell."""
        seed = self.seed if seed is None else seed
        key = (benchmark, config.label, seed)
        if key not in self._cache:
            self._cache[key] = self._execute(benchmark, config, seed)
        return self._cache[key]

    def run_group(
        self,
        combo: PlatformRes,
        specs: Iterable[str],
        benchmarks: Optional[Iterable[str]] = None,
    ) -> List[ExperimentRecord]:
        """Run a platform-resolution group across benchmarks and specs."""
        benchmarks = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
        records = []
        for spec in specs:
            for bench in benchmarks:
                records.append(self.run_cell(bench, ExperimentConfig(combo, spec)))
        return records

    # -- internals ---------------------------------------------------------

    def _execute(self, benchmark: str, config: ExperimentConfig, seed: int) -> ExperimentRecord:
        combo = config.platform_res
        regulator = make_regulator(config.regulator_spec)
        sys_config = SystemConfig(
            benchmark=benchmark,
            platform=combo.platform,
            resolution=combo.resolution,
            seed=seed,
            duration_ms=self.duration_ms,
            warmup_ms=self.warmup_ms,
        )
        telemetry = None
        if self.telemetry_dir is not None or self.ledger is not None:
            from repro.obs import Telemetry

            # Ledger records need gate-delay statistics (telemetry) and
            # events/sec (engine probe), so a ledger forces both on.
            telemetry = Telemetry(engine_probe=self.ledger is not None)
        started = host_wallclock() if self.ledger is not None else None
        result = CloudSystem(sys_config, regulator, telemetry=telemetry).run()
        if self.ledger is not None and started is not None:
            record = build_record(
                result,
                {
                    "benchmark": benchmark,
                    "platform": combo.platform.name,
                    "resolution": combo.resolution.value,
                    "regulator": config.regulator_spec,
                    "duration_ms": self.duration_ms,
                    "warmup_ms": self.warmup_ms,
                },
                label=f"{benchmark}/{config.label}",
                wall_clock_s=host_wallclock() - started,
                git_rev=self._git_rev,
            )
            self.ledger.append(record)
        if self.telemetry_dir is not None and telemetry is not None:
            self._persist_telemetry(telemetry, benchmark, config, seed)

        gap = result.fps_gap()
        mtp_samples = result.mtp_samples()
        mtp_mean = sum(mtp_samples) / len(mtp_samples) if mtp_samples else None
        mtp_box = result.mtp_box() if mtp_samples else None
        qos_target = float(combo.fixed_target)
        qos = result.qos(qos_target)

        return ExperimentRecord(
            benchmark=benchmark,
            config_label=config.label,
            platform=combo.platform.name,
            resolution=combo.resolution.value,
            regulator=regulator.name,
            fps_target=regulator.fps_target,
            render_fps=result.render_fps,
            encode_fps=result.encode_fps,
            client_fps=result.client_fps,
            client_fps_box=result.client_fps_box(),
            fps_gap_mean=gap.mean_gap,
            fps_gap_max=gap.max_gap,
            mtp_mean_ms=mtp_mean,
            mtp_box=mtp_box,
            qos_target=qos_target,
            qos_satisfaction=qos.satisfaction if qos.n_windows else 0.0,
            hardware=evaluate_hardware(result),
            bandwidth_mbps=result.bandwidth_mbps(),
            frames_rendered=result.frames_rendered(),
            frames_dropped=len(result.dropped_frames()),
        )

    def _persist_telemetry(
        self, telemetry, benchmark: str, config: ExperimentConfig, seed: int
    ) -> None:
        """Write one cell's Chrome trace + JSONL dump to telemetry_dir."""
        from repro.obs import write_chrome_trace, write_jsonl

        os.makedirs(self.telemetry_dir, exist_ok=True)
        label = config.label.replace("/", "-")
        stem = os.path.join(self.telemetry_dir, f"{benchmark}_{label}_s{seed}")
        write_chrome_trace(telemetry, stem + ".trace.json")
        write_jsonl(telemetry, stem + ".jsonl")
