"""Run experiment cells: a thin facade over the plan/execute/store core.

:class:`Runner` is the compatibility surface the figures, tables, user
study, and tests were written against.  Since the plan/execute split it
no longer executes anything itself:

* :meth:`Runner.run_cell` wraps the cell in a plan-of-one and hands it
  to the configured executor (:mod:`repro.experiments.executor`);
* :meth:`Runner.run_plan` executes a whole
  :class:`~repro.experiments.plan.Plan` at once — the entry point the
  CLI uses to pre-execute a figure/table/matrix sweep, in parallel
  with ``--workers N``;
* results live in a :class:`~repro.experiments.store.ResultStore`
  keyed by the ledger's content-addressed ``run_id`` (benchmark,
  platform, resolution, regulator, **duration, warmup**, seed), so
  cells are shared across consumers, across processes, and — with a
  persistent store (``--resume``) — across invocations.

With ``telemetry_dir`` set, every executed cell persists a Chrome
trace and a JSONL dump; with a ``ledger`` (or ledger directory)
attached, every executed cell appends its self-describing run record
to the append-only run ledger (:mod:`repro.obs.ledger`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.experiments.config import ExperimentConfig, PlatformRes
from repro.experiments.executor import ExecutionError, ExecutionReport, SerialExecutor
from repro.experiments.plan import CellSpec, Plan
from repro.experiments.record import ExperimentRecord
from repro.experiments.store import ResultStore
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import git_revision
from repro.obs.sweep import SweepEventBus
from repro.workloads import BENCHMARKS

__all__ = ["ExperimentRecord", "Runner"]


class Runner:
    """Plan-of-one facade over the executor + result-store core."""

    def __init__(
        self,
        seed: int = 1,
        duration_ms: float = 20000.0,
        warmup_ms: float = 3000.0,
        telemetry_dir: Optional[str] = None,
        ledger: Optional[Union[RunLedger, str]] = None,
        executor: Optional[SerialExecutor] = None,
        store: Optional[ResultStore] = None,
    ):
        self.seed = seed
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        #: When set, each executed cell persists a Chrome trace and a
        #: JSONL telemetry dump into this directory.
        self.telemetry_dir = telemetry_dir
        #: Execution strategy; defaults to serial.  Pass
        #: :class:`~repro.experiments.executor.ParallelExecutor` to fan
        #: plans out over a process pool.
        self.executor = executor if executor is not None else SerialExecutor()
        #: Completed cells, keyed by content-addressed run_id.  A store
        #: with a ``persist_dir`` survives across invocations (resume).
        self.store = store if store is not None else ResultStore()
        #: When set, each executed cell appends a run record here.  A
        #: string is taken as the ledger directory.
        self.ledger: Optional[RunLedger] = None
        #: When set, every plan execution narrates itself into this
        #: sweep event bus (:mod:`repro.obs.sweep`) — observation only;
        #: results are bit-identical with or without it.
        self.bus: Optional[SweepEventBus] = None
        self._git_rev: Optional[str] = None
        if ledger is not None:
            self.attach_ledger(ledger)

    def attach_ledger(self, ledger: Union[RunLedger, str]) -> RunLedger:
        """Start appending every executed cell's run record to ``ledger``."""
        self.ledger = RunLedger(ledger) if isinstance(ledger, str) else ledger
        self._git_rev = git_revision()
        return self.ledger

    def spec_for(
        self, benchmark: str, config: ExperimentConfig, seed: Optional[int] = None
    ) -> CellSpec:
        """The :class:`CellSpec` this runner would execute for a cell."""
        return CellSpec.from_config(
            benchmark,
            config,
            seed=self.seed if seed is None else seed,
            duration_ms=self.duration_ms,
            warmup_ms=self.warmup_ms,
        )

    def run_plan(self, plan: Plan, allow_failures: bool = False) -> ExecutionReport:
        """Execute every cell of ``plan`` not already in the store.

        Failed cells raise :class:`ExecutionError` (carrying the
        partial report) unless ``allow_failures`` is set, in which case
        the partial report is returned and the caller inspects
        ``report.failures`` itself.
        """
        report = self.executor.run(
            plan,
            store=self.store,
            ledger=self.ledger,
            telemetry_dir=self.telemetry_dir,
            git_rev=self._git_rev,
            bus=self.bus,
        )
        if report.failures and not allow_failures:
            raise ExecutionError(report)
        return report

    def run_cell(
        self, benchmark: str, config: ExperimentConfig, seed: Optional[int] = None
    ) -> ExperimentRecord:
        """Run (or recall) one benchmark × configuration cell."""
        spec = self.spec_for(benchmark, config, seed)
        report = self.run_plan(Plan([spec]))
        return report.outcomes[0].record

    def run_group(
        self,
        combo: PlatformRes,
        specs: Iterable[str],
        benchmarks: Optional[Iterable[str]] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> List[ExperimentRecord]:
        """Run a platform-resolution group across benchmarks and specs.

        ``seeds`` sweeps every cell across multiple seeds (in order);
        by default only the runner's own seed runs, as before.
        """
        names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
        seed_list: Sequence[int] = seeds if seeds is not None else (self.seed,)
        cells = [
            self.spec_for(bench, ExperimentConfig(combo, spec), seed)
            for spec in specs
            for bench in names
            for seed in seed_list
        ]
        plan = Plan(cells)
        report = self.run_plan(plan)
        by_id = {o.spec.run_id: o.record for o in report.outcomes}
        return [by_id[cell.run_id] for cell in cells]
