"""The scheduling core: submit, harvest, retry — against any worker pool.

This is the loop that used to live inside ``ParallelExecutor._execute``,
extracted so both the one-shot CLI executors and the long-lived service
gateway (:mod:`repro.service`) drive cells through the same code:

* :func:`schedule_cells` pushes cell specs through a
  :class:`~repro.experiments.pool.WorkerPool` in **chunks** (one pool
  submission carries ``chunk`` cells, amortizing pickle/IPC overhead on
  small cells), harvests results in submission order, and applies the
  crash-tolerance policy: per-chunk timeout, pool respawn after
  breakage or a hang, and bounded per-cell retry.
* :func:`resolve_chunk` picks the chunk size: explicit wins, a per-cell
  timeout forces ``1`` (a timeout must bound one cell, not a batch),
  otherwise enough chunks to keep every worker busy a few rounds.

The scheduling is observation-transparent: with a ``bus`` it narrates
pool openings/breakages, timeouts and retries; without one the schedule
is identical.  Determinism is untouched — chunking changes *how many
cells ride one pickle*, never what any cell computes.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.experiments.plan import CellSpec
from repro.experiments.pool import WorkerPool
from repro.experiments.results import CellFailure, CellOutcome
from repro.obs import sweep as sweepbus
from repro.obs.sweep import SweepEventBus

__all__ = ["cell_event_fields", "resolve_chunk", "schedule_cells"]

#: A chunk runner: executes a list of cells in a worker, returning one
#: result per cell *in order* (per-cell exceptions become failures
#: inside the worker — a raising chunk future means crash or timeout).
ChunkRunner = Callable[[List[CellSpec]], List[Union[CellOutcome, CellFailure]]]


def cell_event_fields(spec: CellSpec) -> Dict[str, Any]:
    """The identifying fields every cell event carries."""
    return {
        "run_id": spec.run_id,
        "label": spec.label,
        "faults": bool(spec.faults),
        "fault_class": spec.fault_class,
    }


def resolve_chunk(
    cells: int,
    workers: int,
    chunk: Optional[int] = None,
    cell_timeout_s: Optional[float] = None,
) -> int:
    """Pick the cells-per-submission for a run of ``cells`` cells.

    A per-cell timeout forces ``1``: ``future.result(timeout=...)``
    bounds one submission, and a chunk must therefore be one cell for
    the bound to mean what the flag says.  Otherwise an explicit
    ``chunk`` wins, and the default splits the run into roughly two
    submissions per worker — enough rounds that one slow chunk cannot
    idle the rest of the pool for long, while small cells share a
    pickle instead of paying one dispatch round-trip each (the
    sub-1× small-sweep overhead ``BENCH_pr.json`` used to record).
    Plans smaller than twice the worker count stay at one cell per
    submission, which also keeps crash blast radius (a dead worker
    fails its whole chunk) at one cell for the small chaos plans.
    """
    if cell_timeout_s is not None:
        return 1
    if chunk is not None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        return chunk
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return max(1, cells // (workers * 2))


def schedule_cells(
    pool: WorkerPool,
    specs: Sequence[CellSpec],
    run_chunk: ChunkRunner,
    chunk: int = 1,
    cell_timeout_s: Optional[float] = None,
    max_attempts: int = 2,
    bus: Optional[SweepEventBus] = None,
) -> Iterator[Union[CellOutcome, CellFailure]]:
    """Run ``specs`` through ``pool`` and yield one result per cell.

    ``run_chunk`` must be picklable (module-level, or a
    :func:`functools.partial` of a module-level function — the fork
    lint enforces this at its call sites) and return one
    outcome/failure per cell in chunk order.

    Policy, identical to the historical ``ParallelExecutor`` loop:

    * results are harvested in submission order and yielded as they
      complete, so the caller persists incrementally;
    * a chunk that exceeds ``cell_timeout_s`` fails its cells and marks
      the pool hung — the pool is respawned (workers abandoned) before
      the next round;
    * a worker crash (:class:`~concurrent.futures.BrokenExecutor`)
      breaks the pool: chunks that finished before the crash still
      yield results, every cell of every unfinished chunk is re-queued
      *individually* (chunk size 1 — the crasher must not take
      innocent neighbours down with it again), and the pool respawns;
    * a cell is retried until it has had ``max_attempts`` executions,
      then fails with a crash diagnosis.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    attempts: Dict[str, int] = {spec.run_id: 0 for spec in specs}
    queue: List[List[CellSpec]] = [
        list(specs[i : i + chunk]) for i in range(0, len(specs), chunk)
    ]
    while queue:
        batch, queue = queue, []
        for group in batch:
            for spec in group:
                attempts[spec.run_id] += 1
        if bus is not None:
            bus.emit(
                sweepbus.POOL_OPENED,
                workers=pool.workers,
                batch=sum(len(group) for group in batch),
            )
        futures: List[Tuple[List[CellSpec], "Future[Any]"]] = [
            (group, pool.submit(run_chunk, group)) for group in batch
        ]
        hung = False
        pool_broken = False
        for group, future in futures:
            if pool_broken:
                # The pool already broke: chunks that finished before
                # the crash still hold results; the rest re-queue.
                if future.done() and future.exception() is None:
                    yield from _chunk_results(group, future.result(), attempts)
                else:
                    yield from _requeue(group, attempts, queue, max_attempts, bus)
                continue
            try:
                results = future.result(timeout=cell_timeout_s)
            except FuturesTimeoutError:
                hung = True
                for spec in group:
                    if bus is not None:
                        bus.emit(
                            sweepbus.CELL_TIMED_OUT,
                            timeout_s=cell_timeout_s,
                            **cell_event_fields(spec),
                        )
                    yield CellFailure(
                        spec,
                        f"timed out after {cell_timeout_s:g} s",
                        attempts=attempts[spec.run_id],
                    )
            except BrokenExecutor:
                pool_broken = True
                if bus is not None:
                    bus.emit(sweepbus.POOL_BROKEN)
                yield from _requeue(group, attempts, queue, max_attempts, bus)
            except Exception as exc:
                for spec in group:
                    yield CellFailure(
                        spec,
                        f"{type(exc).__name__}: {exc}",
                        attempts=attempts[spec.run_id],
                    )
            else:
                yield from _chunk_results(group, results, attempts)
        # A hung worker poisons its slot in a persistent pool, and a
        # broken pool is dead: either way the next round needs fresh
        # workers.  ``wait=False`` abandons hung workers, the policy
        # the one-shot executor always had.
        if hung:
            pool.respawn(wait=False)
        elif pool_broken:
            pool.respawn(wait=True)


def _chunk_results(
    group: List[CellSpec],
    results: List[Union[CellOutcome, CellFailure]],
    attempts: Dict[str, int],
) -> Iterator[Union[CellOutcome, CellFailure]]:
    """Yield a finished chunk's results, stamping attempt counts."""
    for item in results:
        if isinstance(item, CellFailure):
            yield replace(item, attempts=attempts.get(item.spec.run_id, 1))
        else:
            yield item
    # A chunk runner that returned short (it must not) would silently
    # drop cells; surface that as explicit failures instead.
    returned = {item.spec.run_id for item in results}
    for spec in group:
        if spec.run_id not in returned:
            yield CellFailure(
                spec,
                "chunk runner returned no result for this cell",
                attempts=attempts[spec.run_id],
            )


def _requeue(
    group: List[CellSpec],
    attempts: Dict[str, int],
    queue: List[List[CellSpec]],
    max_attempts: int,
    bus: Optional[SweepEventBus],
) -> Iterator[CellFailure]:
    """Re-queue a crashed chunk's cells individually, or fail them."""
    for spec in group:
        attempted = attempts[spec.run_id]
        if attempted < max_attempts:
            queue.append([spec])
            if bus is not None:
                bus.emit(
                    sweepbus.CELL_RETRIED, attempt=attempted, **cell_event_fields(spec)
                )
        else:
            yield CellFailure(
                spec,
                f"worker crashed (gave up after {attempted} attempt(s))",
                attempts=attempted,
            )
