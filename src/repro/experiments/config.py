"""Enumeration of the paper's evaluation matrix (Sec. 6.1).

Two resolutions × two platforms, and per platform-resolution one NoReg
configuration plus three regulators (Int, RVS, ODR) under two QoS goals
(maximize FPS; or a fixed target — 60 FPS at 720p, 30 FPS at 1080p):
28 configurations per benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads import GCE, PRIVATE_CLOUD, PlatformProfile, Resolution

__all__ = [
    "ExperimentConfig",
    "PlatformRes",
    "paper_configuration_matrix",
    "platform_res_combos",
]


@dataclass(frozen=True)
class PlatformRes:
    """One platform + resolution combination (a figure-group column)."""

    platform: PlatformProfile
    resolution: Resolution

    @property
    def label(self) -> str:
        tag = {"private": "Priv", "gce": "GCE", "local": "Local"}.get(
            self.platform.name, self.platform.name
        )
        return f"{tag}{self.resolution.value}"

    @property
    def fixed_target(self) -> int:
        """The fixed QoS goal at this resolution (60 at 720p, 30 at 1080p)."""
        return self.resolution.default_fps_target


@dataclass(frozen=True)
class ExperimentConfig:
    """One (platform, resolution, regulator-spec) cell of the matrix."""

    platform_res: PlatformRes
    regulator_spec: str

    @property
    def label(self) -> str:
        return f"{self.platform_res.label}/{self.regulator_spec}"


def platform_res_combos() -> List[PlatformRes]:
    """The paper's four platform-resolution groups, in reporting order."""
    return [
        PlatformRes(PRIVATE_CLOUD, Resolution.R720P),
        PlatformRes(GCE, Resolution.R720P),
        PlatformRes(PRIVATE_CLOUD, Resolution.R1080P),
        PlatformRes(GCE, Resolution.R1080P),
    ]


def regulator_specs_for(combo: PlatformRes, include_ablation: bool = False) -> List[str]:
    """The seven paper configurations for one platform-resolution group.

    With ``include_ablation`` the Table 2 extra row (ODRMax-noPri) is
    appended.
    """
    target = combo.fixed_target
    specs = [
        "NoReg",
        "IntMax",
        "RVSMax",
        "ODRMax",
        f"Int{target}",
        f"RVS{target}",
        f"ODR{target}",
    ]
    if include_ablation:
        specs.append("ODRMax-noPri")
    return specs


def paper_configuration_matrix(include_ablation: bool = False) -> List[ExperimentConfig]:
    """All 28 paper configurations (32 with the Table 2 ablation rows)."""
    matrix = []
    for combo in platform_res_combos():
        for spec in regulator_specs_for(combo, include_ablation=include_ablation):
            matrix.append(ExperimentConfig(combo, spec))
    return matrix
