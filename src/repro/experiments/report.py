"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    if value is None:
        return "n/a"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render a fixed-width ASCII table."""
    text_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
