"""A persistent, reusable process-pool for cell execution.

:class:`WorkerPool` wraps a stdlib
:class:`~concurrent.futures.ProcessPoolExecutor` so the expensive parts
of parallel execution — spawning worker processes, and (with the events
plane on) spawning the ``multiprocessing.Manager`` that carries
worker-side telemetry — are paid **once per pool**, not once per sweep.
The one-shot executors (:class:`~repro.experiments.executor.ParallelExecutor`)
create a pool per run, exactly as before; the service layer
(:mod:`repro.service`) creates one pool per server and runs every job's
cells through it, which is what turns pool warmup from a per-sweep tax
into a per-server constant.

The pool also owns the worker→parent event plumbing that used to live
inside the executor: with ``events=True`` it creates a manager-hosted
queue (SIGKILL-safe — a dying worker cannot corrupt it mid-``put``),
initializes every worker to route its
:func:`repro.obs.sweep.emit_cell_event` calls into that queue, and
drains the queue on a parent thread into whatever ``sink`` is currently
attached.  Because the sink is attached *per run* (not baked in at
worker spawn), one warm pool can serve many sweeps — or many concurrent
service jobs, whose router fans events out to per-job buses.

A pool survives its own failures: :meth:`respawn` replaces a broken or
hung :class:`~concurrent.futures.ProcessPoolExecutor` with a fresh one
(the scheduling core calls it after ``BrokenExecutor`` / a cell
timeout) while the manager, queue, drain thread, and attached sink all
keep working.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, Optional

from repro.obs import sweep as sweepbus
from repro.obs.probes import host_epoch

__all__ = ["PoolUnavailableError", "WorkerPool"]


class PoolUnavailableError(RuntimeError):
    """The pool cannot provide workers at all — it is closed, or the
    host refuses to spawn worker processes (fork/spawn failure, fd or
    process limits).  Distinct from :class:`~concurrent.futures.BrokenExecutor`
    (workers existed and died, which :meth:`WorkerPool.respawn` heals):
    this is the signal that respawning cannot help, and callers who can
    degrade — the service scheduler falls back to serial in-process
    execution — should.  Subclasses :class:`RuntimeError` so existing
    ``except RuntimeError`` handlers keep working.
    """

#: Signature of a worker-event sink: ``sink(kind, fields)``.
EventSink = Callable[[str, Dict[str, Any]], None]


def _queue_sink(queue: Any) -> EventSink:
    """A worker sink that ships (kind, fields) tuples over ``queue``."""

    def sink(kind: str, fields: Dict[str, Any]) -> None:
        queue.put((kind, fields))

    return sink


def _worker_init(queue: Any) -> None:
    """Pool-worker initializer: route cell events into the parent's queue."""
    sweepbus.attach_worker_sink(_queue_sink(queue))
    sweepbus.emit_cell_event(
        sweepbus.WORKER_SPAWNED, pid=os.getpid(), epoch_s=host_epoch()
    )


class WorkerPool:
    """A reusable process pool with an optional worker-event plane.

    ``workers`` is the pool width.  With ``events=True`` the pool
    carries worker-side sweep events (``worker_spawned``,
    ``cell_started``, per-cell resources) to the attached ``sink``;
    with ``events=False`` workers run bare and no manager process is
    spawned — the zero-overhead default for unobserved sweeps.

    Thread-safe for concurrent :meth:`submit` calls (the service's
    concurrent jobs share one pool); :meth:`respawn` and :meth:`close`
    serialize against submissions.
    """

    def __init__(self, workers: int, events: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.events = events
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False
        #: Pools replaced by :meth:`respawn` over this pool's lifetime.
        self.respawns = 0
        self._sink: Optional[EventSink] = None
        self._manager: Optional[Any] = None
        self._queue: Optional[Any] = None
        self._drain: Optional[threading.Thread] = None

    # -- the event plane ---------------------------------------------------

    def attach_sink(self, sink: Optional[EventSink]) -> Optional[EventSink]:
        """Route drained worker events into ``sink``; returns the old sink.

        Attach/detach happens per run (or per service job router), so a
        warm pool serves sweeps with and without observation — workers
        always emit into the queue; unrouted events are dropped here.
        """
        previous = self._sink
        self._sink = sink
        return previous

    def _pump(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            try:
                item = queue.get()
            except (EOFError, OSError):  # manager went away
                return
            if item is None:
                return
            kind, fields = item
            sink = self._sink
            if sink is None:
                continue
            try:
                sink(kind, fields)
            except Exception:
                # Telemetry must never break execution: a failing sink
                # degrades to a gap in the event log, nothing more.
                continue

    def _ensure_plane(self) -> None:
        if not self.events or self._manager is not None:
            return
        self._manager = multiprocessing.Manager()
        self._queue = self._manager.Queue()
        self._drain = threading.Thread(
            target=self._pump, name="worker-pool-drain", daemon=True
        )
        self._drain.start()

    # -- the pool itself ---------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._closed:
            raise PoolUnavailableError("worker pool is closed")
        if self._executor is None:
            try:
                self._ensure_plane()
                if self._queue is not None:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers,
                        initializer=_worker_init,
                        initargs=(self._queue,),
                    )
                else:
                    self._executor = ProcessPoolExecutor(max_workers=self.workers)
            except OSError as exc:
                # The host refused to give us workers (process/fd
                # limits, a dead manager): respawning cannot help.
                raise PoolUnavailableError(
                    f"cannot spawn worker processes: {exc}"
                ) from exc
        return self._executor

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Submit one task; workers (and the event plane) spawn lazily."""
        with self._lock:
            return self._ensure_executor().submit(fn, *args, **kwargs)

    def warm(self) -> None:
        """Force worker (and manager) spawn now, so runs do not pay it.

        Submits one no-op per worker and waits for all of them — after
        this, every worker process exists and the first real submission
        is pure work.  The service calls this at server start.
        """
        futures = [self.submit(_noop) for _ in range(self.workers)]
        for future in futures:
            future.result()

    def respawn(self, wait: bool = False) -> None:
        """Replace the underlying executor with a fresh one.

        Called after ``BrokenExecutor`` (the old pool is dead) or after
        a cell timeout (a hung worker would poison its slot forever in
        a persistent pool).  ``wait=False`` abandons hung workers, the
        same policy the one-shot executor always had.  The event plane
        is preserved — freshly spawned workers route into the same
        queue.
        """
        with self._lock:
            old, self._executor = self._executor, None
            if old is not None:
                self.respawns += 1
                old.shutdown(wait=wait, cancel_futures=True)

    def close(self) -> None:
        """Shut everything down: executor, drain thread, manager."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)
        if self._queue is not None:
            try:
                self._queue.put(None)
            except Exception:
                pass
        if self._drain is not None:
            self._drain.join(timeout=10.0)
            self._drain = None
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except Exception:
                pass
            self._manager = None
            self._queue = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _noop() -> None:
    """The warm-up task: exists only to force worker spawn."""
    return None
