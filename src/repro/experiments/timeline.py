"""ASCII pipeline timelines (the paper's Fig. 5, as terminal art).

Renders a run's busy intervals as per-stage lanes on a character grid::

    render   |##.###..##.###..##.###
    encode   |..#####..#####..#####.
    transmit |.......##.....##......

Each column is one time bucket; a ``#`` marks the stage busy for most
of that bucket, ``+`` partially busy.  Used by ``python -m repro
figure 5`` output and handy for eyeballing regulator behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

from repro.simcore import IntervalTrace

__all__ = ["render_timeline"]

#: Busy fraction at/above which a bucket prints as fully busy.
FULL_THRESHOLD = 0.6
#: Busy fraction at/above which a bucket prints as partially busy.
PARTIAL_THRESHOLD = 0.1


def render_timeline(
    trace: IntervalTrace,
    stages: Sequence[str],
    start_ms: float,
    end_ms: float,
    width: int = 72,
    title: str = "",
) -> str:
    """Render busy lanes for ``stages`` over ``[start_ms, end_ms)``."""
    if end_ms <= start_ms:
        raise ValueError("empty window")
    if width < 8:
        raise ValueError("width too small")
    bucket = (end_ms - start_ms) / width
    label_width = max(len(s) for s in stages)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"{'':{label_width}s}  t = {start_ms:.1f} .. {end_ms:.1f} ms "
        f"({bucket:.2f} ms/column)"
    )
    for stage in stages:
        cells = []
        for i in range(width):
            lo = start_ms + i * bucket
            hi = lo + bucket
            busy = trace.busy_time(stage, lo, hi) / bucket
            if busy >= FULL_THRESHOLD:
                cells.append("#")
            elif busy >= PARTIAL_THRESHOLD:
                cells.append("+")
            else:
                cells.append(".")
        lines.append(f"{stage:{label_width}s} |{''.join(cells)}|")
    return "\n".join(lines)


def run_timeline(result: "RunResult", window_ms: float = 250.0, **kwargs) -> str:
    """Timeline of the first ``window_ms`` of a run's measured region."""
    return render_timeline(
        result.trace,
        ("render", "copy", "encode", "transmit", "decode"),
        result.t_start,
        result.t_start + window_ms,
        **kwargs,
    )
