"""Regeneration of every figure in the paper's analysis and evaluation.

Each ``figNN_*`` function returns a dict with structured ``data`` plus a
plain-text ``text`` rendering.  Analysis figures (1, 3-7) use InMind at
720p on the private cloud, exactly like Sec. 4; evaluation figures
(9-13) sweep the benchmark × configuration matrix of Sec. 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.config import (
    ExperimentConfig,
    PlatformRes,
    platform_res_combos,
    regulator_specs_for,
)
from repro.experiments.plan import CellSpec, Plan
from repro.experiments.record import ExperimentRecord
from repro.experiments.report import format_table
from repro.experiments.runner import Runner
from repro.metrics.stats import mean, percentile
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import BENCHMARKS, PRIVATE_CLOUD, Resolution

__all__ = [
    "fig01_fps_gap",
    "fig03_regulation_fps",
    "fig04_time_variation",
    "fig05_pipeline_schedules",
    "fig06_mtp_latency",
    "fig07_dram_efficiency",
    "fig09_qos_averages",
    "fig10_client_fps_detail",
    "fig11_mtp_detail",
    "fig12_memory_efficiency",
    "fig13_power",
    "figure_demands",
    "summary_demands",
    "summary_overall",
]

#: The five Sec. 4 analysis configurations, in figure order.
ANALYSIS_SPECS = ["NoReg", "Int60", "IntMax", "RVS60", "RVSMax"]

_PRIV720 = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)


# ---------------------------------------------------------------------------
# Demand declarations (the planning layer's view of every figure).
# ---------------------------------------------------------------------------


def _specs(runner: Runner, combo: PlatformRes, specs, benchmarks) -> List[CellSpec]:
    return [
        runner.spec_for(bench, ExperimentConfig(combo, spec))
        for spec in specs
        for bench in benchmarks
    ]


def figure_demands(number: str, runner: Runner) -> Plan:
    """The cells figure ``number`` will read, as a deduplicated plan.

    Pre-executing this plan (``runner.run_plan``) makes the renderer a
    pure cache read — that is how ``odr-sim figure N --workers M``
    parallelizes a figure.  Figures 4 and 5 drive raw systems rather
    than matrix cells and return an empty plan.
    """
    plan = Plan()
    if number == "1":
        plan.extend(_specs(runner, _PRIV720, ["NoReg"], ["RE", "IM"]))
    elif number in ("3", "6", "7"):
        plan.extend(_specs(runner, _PRIV720, ANALYSIS_SPECS, ["IM"]))
    elif number == "9":
        for combo in platform_res_combos():
            plan.extend(_specs(runner, combo, regulator_specs_for(combo), BENCHMARKS))
    elif number in ("10", "11"):
        combos = platform_res_combos()
        for idx in _DETAIL_GROUPS:
            combo = combos[idx]
            plan.extend(_specs(runner, combo, regulator_specs_for(combo), BENCHMARKS))
    elif number in ("12", "13"):
        plan.extend(_specs(runner, _PRIV720, _EFFICIENCY_SPECS, BENCHMARKS))
    elif number not in ("4", "5"):
        raise ValueError(f"unknown figure {number!r}")
    return plan


def summary_demands(runner: Runner) -> Plan:
    """Every cell :func:`summary_overall` aggregates (Sec. 6.6)."""
    plan = Plan()
    for combo in platform_res_combos():
        plan.extend(_specs(runner, combo, regulator_specs_for(combo), BENCHMARKS))
    # The 720p-private efficiency block only adds cells already demanded
    # above; extend anyway so the plan stays correct if specs diverge.
    plan.extend(_specs(runner, _PRIV720, ["NoReg", "ODRMax", "ODR60"], BENCHMARKS))
    return plan


def _analysis_cell(runner: Runner, spec: str, benchmark: str = "IM") -> ExperimentRecord:
    return runner.run_cell(benchmark, ExperimentConfig(_PRIV720, spec))


# ---------------------------------------------------------------------------
# Figure 1 — excessive rendering causes large FPS gaps (RE and IM, NoReg).
# ---------------------------------------------------------------------------


def fig01_fps_gap(runner: Runner) -> Dict[str, object]:
    """Cloud (render) vs client (decode) FPS for Red Eclipse and InMind."""
    data = {}
    for bench in ("RE", "IM"):
        record = runner.run_cell(bench, ExperimentConfig(_PRIV720, "NoReg"))
        data[bench] = {
            "cloud_fps": record.render_fps,
            "client_fps": record.client_fps,
            "gap": record.render_fps - record.client_fps,
        }
    text = format_table(
        ["benchmark", "cloud FPS", "client FPS", "FPS gap"],
        [[b, d["cloud_fps"], d["client_fps"], d["gap"]] for b, d in data.items()],
        title="Figure 1: Excessive frame rendering causes large FPS gaps (NoReg, 720p private)",
    )
    return {"data": data, "text": text}


# ---------------------------------------------------------------------------
# Figure 3 — InMind per-stage FPS under the five analysis configurations.
# ---------------------------------------------------------------------------


def fig03_regulation_fps(runner: Runner) -> Dict[str, object]:
    """InMind render/encode/decode FPS under NoReg and four regulators."""
    data = {}
    for spec in ANALYSIS_SPECS:
        record = _analysis_cell(runner, spec)
        data[spec] = {
            "render_fps": record.render_fps,
            "encode_fps": record.encode_fps,
            "decode_fps": record.client_fps,
        }
    text = format_table(
        ["config", "render FPS", "encode FPS", "decode FPS"],
        [[s, d["render_fps"], d["encode_fps"], d["decode_fps"]] for s, d in data.items()],
        title="Figure 3: InMind FPS per stage under different FPS regulations",
    )
    return {"data": data, "text": text}


# ---------------------------------------------------------------------------
# Figure 4 — processing-time variation: CDFs and a 100-frame trace.
# ---------------------------------------------------------------------------


def fig04_time_variation(seed: int = 1, n_trace: int = 100) -> Dict[str, object]:
    """InMind render/encode/transmit time distributions under NoReg."""
    config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=seed, duration_ms=20000)
    result = CloudSystem(config, make_regulator("NoReg")).run()
    stages = ("render", "encode", "transmit")
    durations = {
        stage: [
            r.duration
            for r in result.trace.records(stage)
            if result.t_start <= r.start < result.t_end
        ]
        for stage in stages
    }
    cdf = {}
    for stage, values in durations.items():
        pts = sorted(values)
        cdf[stage] = {
            "p50": percentile(pts, 50),
            "p80": percentile(pts, 80),
            "p90": percentile(pts, 90),
            "p99": percentile(pts, 99),
            "max": max(pts),
            "below_16_6ms": sum(1 for v in pts if v <= 16.6) / len(pts),
        }
    trace = {stage: durations[stage][:n_trace] for stage in stages}
    text = format_table(
        ["stage", "p50 ms", "p80 ms", "p90 ms", "p99 ms", "max ms", "<=16.6ms"],
        [
            [s, c["p50"], c["p80"], c["p90"], c["p99"], c["max"], c["below_16_6ms"]]
            for s, c in cdf.items()
        ],
        title="Figure 4: InMind processing-time variation (CDF summary + trace data)",
    )
    return {"data": {"cdf": cdf, "trace": trace}, "text": text}


# ---------------------------------------------------------------------------
# Figure 5 — pipeline schedules under Int60 / RVS60 / ODR60.
# ---------------------------------------------------------------------------


def fig05_pipeline_schedules(seed: int = 1, n_frames: int = 8) -> Dict[str, object]:
    """Per-frame stage intervals for the first frames of each regulator.

    Returns, per configuration, a list of ``(stage, start, end)``
    busy intervals covering the first ``n_frames`` encoded frames —
    the data behind the paper's Fig. 5 schedule sketches.
    """
    schedules = {}
    for spec in ("Int60", "RVS60", "ODR60"):
        config = SystemConfig(
            "IM", PRIVATE_CLOUD, Resolution.R720P, seed=seed, duration_ms=2000, warmup_ms=0
        )
        result = CloudSystem(config, make_regulator(spec)).run()
        intervals = [
            (r.stage, r.start, r.end)
            for r in result.trace.records()
            if r.stage in ("render", "encode")
        ]
        intervals.sort(key=lambda t: t[1])
        # Keep intervals up to the n-th encode completion.
        encode_ends = sorted(r.end for r in result.trace.records("encode"))
        horizon = encode_ends[n_frames - 1] if len(encode_ends) >= n_frames else float("inf")
        schedules[spec] = [iv for iv in intervals if iv[1] <= horizon]
    lines = ["Figure 5: pipeline schedules (first frames; stage, start ms, end ms)"]
    for spec, intervals in schedules.items():
        lines.append(f"-- {spec} --")
        for stage, start, end in intervals[:16]:
            lines.append(f"  {stage:8s} {start:8.2f} -> {end:8.2f}")
    return {"data": schedules, "text": "\n".join(lines)}


# ---------------------------------------------------------------------------
# Figure 6 — InMind MtP latency under the five analysis configurations.
# ---------------------------------------------------------------------------


def fig06_mtp_latency(runner: Runner) -> Dict[str, object]:
    data = {}
    for spec in ANALYSIS_SPECS:
        record = _analysis_cell(runner, spec)
        data[spec] = record.mtp_mean_ms
    text = format_table(
        ["config", "MtP latency (ms)"],
        [[s, v] for s, v in data.items()],
        title="Figure 6: InMind MtP latency under different FPS regulations",
    )
    return {"data": data, "text": text}


# ---------------------------------------------------------------------------
# Figure 7 — InMind DRAM efficiency under the five analysis configurations.
# ---------------------------------------------------------------------------


def fig07_dram_efficiency(runner: Runner) -> Dict[str, object]:
    data = {}
    for spec in ANALYSIS_SPECS:
        record = _analysis_cell(runner, spec)
        data[spec] = {
            "row_miss_rate": record.row_miss_rate,
            "read_access_ns": record.read_access_ns,
            "ipc": record.ipc,
        }
    text = format_table(
        ["config", "miss rate", "read ns", "IPC"],
        [[s, d["row_miss_rate"], d["read_access_ns"], d["ipc"]] for s, d in data.items()],
        title="Figure 7: FPS regulation and DRAM efficiency (InMind, 720p private)",
    )
    return {"data": data, "text": text}


# ---------------------------------------------------------------------------
# Figure 9 — average client FPS and MtP latency across all 28 configurations.
# ---------------------------------------------------------------------------


def fig09_qos_averages(runner: Runner) -> Dict[str, object]:
    """Per platform-resolution group: benchmark-averaged FPS and MtP."""
    groups = {}
    for combo in platform_res_combos():
        specs = regulator_specs_for(combo)
        per_spec = {}
        for spec in specs:
            records = [
                runner.run_cell(bench, ExperimentConfig(combo, spec)) for bench in BENCHMARKS
            ]
            fps = mean([r.client_fps for r in records])
            lat_values = [r.mtp_mean_ms for r in records if r.mtp_mean_ms is not None]
            per_spec[spec] = {
                "client_fps": fps,
                "mtp_ms": mean(lat_values) if lat_values else None,
            }
        groups[combo.label] = per_spec

    # Overall averages per regulator family/goal (the rightmost bars).
    overall: Dict[str, Dict[str, List[float]]] = {}
    for per_spec in groups.values():
        for spec, vals in per_spec.items():
            family = _normalize_spec(spec)
            slot = overall.setdefault(family, {"fps": [], "mtp": []})
            slot["fps"].append(vals["client_fps"])
            if vals["mtp_ms"] is not None:
                slot["mtp"].append(vals["mtp_ms"])
    overall_avg = {
        family: {
            "client_fps": mean(v["fps"]),
            "mtp_ms": mean(v["mtp"]) if v["mtp"] else None,
        }
        for family, v in overall.items()
    }

    rows = []
    for label, per_spec in groups.items():
        for spec, vals in per_spec.items():
            rows.append([label, spec, vals["client_fps"], vals["mtp_ms"]])
    for family, vals in overall_avg.items():
        rows.append(["OverallAvg", family, vals["client_fps"], vals["mtp_ms"]])
    text = format_table(
        ["group", "config", "client FPS", "MtP ms"],
        rows,
        title="Figure 9: Average QoS results over six benchmarks, all configurations",
    )
    return {"data": {"groups": groups, "overall": overall_avg}, "text": text}


def _normalize_spec(spec: str) -> str:
    """Fold Int30/Int60 → IntFix etc. for overall averaging."""
    for family in ("Int", "RVS", "ODR"):
        if spec.startswith(family) and spec[len(family):].isdigit():
            return f"{family}Fix"
    return spec


# ---------------------------------------------------------------------------
# Figures 10/11 — per-benchmark client FPS / MtP box statistics.
# ---------------------------------------------------------------------------

#: The three groups detailed in Figs. 10 and 11.
_DETAIL_GROUPS = [0, 1, 3]  # indices into platform_res_combos()


def _detail(runner: Runner, metric: str, title: str) -> Dict[str, object]:
    combos = platform_res_combos()
    data: Dict[str, Dict[str, Dict[str, object]]] = {}
    rows = []
    for idx in _DETAIL_GROUPS:
        combo = combos[idx]
        group: Dict[str, Dict[str, object]] = {}
        for bench in BENCHMARKS:
            per_spec = {}
            for spec in regulator_specs_for(combo):
                record = runner.run_cell(bench, ExperimentConfig(combo, spec))
                box = record.client_fps_box if metric == "fps" else record.mtp_box
                value = record.client_fps if metric == "fps" else record.mtp_mean_ms
                per_spec[spec] = {"mean": value, "box": box}
                rows.append([combo.label, bench, spec, value,
                             box.p1 if box else None, box.p99 if box else None])
            group[bench] = per_spec
        data[combo.label] = group
    text = format_table(
        ["group", "bench", "config", "mean", "p1", "p99"], rows, title=title
    )
    return {"data": data, "text": text}


def fig10_client_fps_detail(runner: Runner) -> Dict[str, object]:
    """Per-benchmark client FPS with tails (box plots of Fig. 10)."""
    return _detail(runner, "fps", "Figure 10: Detailed client FPS results")


def fig11_mtp_detail(runner: Runner) -> Dict[str, object]:
    """Per-benchmark MtP latency with tails (box plots of Fig. 11)."""
    return _detail(runner, "mtp", "Figure 11: Detailed MtP latency results")


# ---------------------------------------------------------------------------
# Figures 12/13 — memory efficiency and power (720p private, all benchmarks).
# ---------------------------------------------------------------------------

#: Fig. 12/13 configuration order.
_EFFICIENCY_SPECS = ["NoReg", "IntMax", "RVSMax", "ODRMax", "Int60", "RVS60", "ODR60"]


def fig12_memory_efficiency(runner: Runner) -> Dict[str, object]:
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    rows = []
    for bench in BENCHMARKS:
        per_spec = {}
        for spec in _EFFICIENCY_SPECS:
            record = runner.run_cell(bench, ExperimentConfig(_PRIV720, spec))
            per_spec[spec] = {
                "ipc": record.ipc,
                "row_miss_rate": record.row_miss_rate,
                "read_access_ns": record.read_access_ns,
            }
            rows.append([bench, spec, record.ipc, record.row_miss_rate,
                         record.read_access_ns])
        data[bench] = per_spec
    # Benchmark-averaged columns (the paper's AVG bars).
    avg = {}
    for spec in _EFFICIENCY_SPECS:
        avg[spec] = {
            key: mean([data[b][spec][key] for b in data])
            for key in ("ipc", "row_miss_rate", "read_access_ns")
        }
        rows.append(["AVG", spec, avg[spec]["ipc"], avg[spec]["row_miss_rate"],
                     avg[spec]["read_access_ns"]])
    text = format_table(
        ["bench", "config", "IPC", "miss rate", "read ns"],
        rows,
        title="Figure 12: Memory efficiency (720p private cloud)",
    )
    return {"data": {"per_benchmark": data, "avg": avg}, "text": text}


def fig13_power(runner: Runner) -> Dict[str, object]:
    data: Dict[str, Dict[str, float]] = {}
    rows = []
    for bench in BENCHMARKS:
        per_spec = {}
        for spec in _EFFICIENCY_SPECS:
            record = runner.run_cell(bench, ExperimentConfig(_PRIV720, spec))
            per_spec[spec] = record.power_w
            rows.append([bench, spec, record.power_w])
        data[bench] = per_spec
    avg = {spec: mean([data[b][spec] for b in data]) for spec in _EFFICIENCY_SPECS}
    for spec, value in avg.items():
        rows.append(["AVG", spec, value])
    text = format_table(
        ["bench", "config", "power W"],
        rows,
        title="Figure 13: Power usages (720p private cloud)",
    )
    return {"data": {"per_benchmark": data, "avg": avg}, "text": text}


# ---------------------------------------------------------------------------
# Sec. 6.6 — overall evaluation summary.
# ---------------------------------------------------------------------------


def summary_overall(runner: Runner) -> Dict[str, object]:
    """The headline Sec. 6.6 aggregates: gaps, FPS, MtP, efficiency."""
    # QoS aggregates across all four groups.
    fps_by_family: Dict[str, List[float]] = {}
    mtp_by_family: Dict[str, List[float]] = {}
    gap_by_family: Dict[str, List[float]] = {}
    for combo in platform_res_combos():
        for spec in regulator_specs_for(combo):
            family = _normalize_spec(spec)
            for bench in BENCHMARKS:
                record = runner.run_cell(bench, ExperimentConfig(combo, spec))
                fps_by_family.setdefault(family, []).append(record.client_fps)
                gap_by_family.setdefault(family, []).append(record.fps_gap_mean)
                if record.mtp_mean_ms is not None:
                    mtp_by_family.setdefault(family, []).append(record.mtp_mean_ms)

    def avg(d: Dict[str, List[float]], key: str) -> Optional[float]:
        values = d.get(key)
        return mean(values) if values else None

    odr_gap = mean(gap_by_family["ODRMax"] + gap_by_family["ODRFix"])
    noreg_gap = mean(gap_by_family["NoReg"])

    odr_all_fps = mean(fps_by_family["ODRMax"] + fps_by_family["ODRFix"])
    int_all_fps = mean(fps_by_family["IntMax"] + fps_by_family["IntFix"])
    rvs_all_fps = mean(fps_by_family["RVSMax"] + fps_by_family["RVSFix"])

    odr_all_mtp = mean(mtp_by_family["ODRMax"] + mtp_by_family["ODRFix"])
    int_all_mtp = mean(mtp_by_family["IntMax"] + mtp_by_family["IntFix"])
    rvs_all_mtp = mean(mtp_by_family["RVSMax"] + mtp_by_family["RVSFix"])
    noreg_mtp = avg(mtp_by_family, "NoReg")

    # Efficiency aggregates over the 720p private group (as in Sec. 6.6).
    eff: Dict[str, Dict[str, float]] = {}
    for spec in ("NoReg", "ODRMax", "ODR60"):
        records = [
            runner.run_cell(bench, ExperimentConfig(_PRIV720, spec)) for bench in BENCHMARKS
        ]
        eff[spec] = {
            "ipc": mean([r.ipc for r in records]),
            "row_miss_rate": mean([r.row_miss_rate for r in records]),
            "read_access_ns": mean([r.read_access_ns for r in records]),
            "power_w": mean([r.power_w for r in records]),
            "bandwidth_mbps": mean([r.bandwidth_mbps for r in records]),
        }
    odr_eff = {
        key: (eff["ODRMax"][key] + eff["ODR60"][key]) / 2.0
        for key in eff["NoReg"]
    }

    data = {
        "fps_gap": {"NoReg": noreg_gap, "ODR": odr_gap},
        "client_fps": {
            "ODRMax": avg(fps_by_family, "ODRMax"),
            "NoReg": avg(fps_by_family, "NoReg"),
            "ODR_vs_Int_pct": 100.0 * (odr_all_fps / int_all_fps - 1.0),
            "ODR_vs_RVS_pct": 100.0 * (odr_all_fps / rvs_all_fps - 1.0),
        },
        "mtp": {
            "NoReg": noreg_mtp,
            "ODR": odr_all_mtp,
            "ODR_vs_NoReg_pct": 100.0 * (1.0 - odr_all_mtp / noreg_mtp),
            "ODR_vs_Int_pct": 100.0 * (1.0 - odr_all_mtp / int_all_mtp),
            "ODR_vs_RVS_pct": 100.0 * (1.0 - odr_all_mtp / rvs_all_mtp),
        },
        "efficiency_720p_private": {
            "ipc_improvement_pct": 100.0 * (odr_eff["ipc"] / eff["NoReg"]["ipc"] - 1.0),
            "miss_rate_reduction_pct": 100.0
            * (1.0 - odr_eff["row_miss_rate"] / eff["NoReg"]["row_miss_rate"]),
            "read_time_reduction_pct": 100.0
            * (1.0 - odr_eff["read_access_ns"] / eff["NoReg"]["read_access_ns"]),
            "power_reduction_pct": 100.0
            * (1.0 - odr_eff["power_w"] / eff["NoReg"]["power_w"]),
        },
        "bandwidth_mbps": {spec: eff[spec]["bandwidth_mbps"] for spec in eff},
    }

    lines = ["Section 6.6 overall summary (paper's headline claims)"]
    lines.append(f"  avg FPS gap: NoReg {noreg_gap:.1f} -> ODR {odr_gap:.1f} frames")
    lines.append(
        f"  client FPS: ODR vs Int {data['client_fps']['ODR_vs_Int_pct']:+.1f}%, "
        f"vs RVS {data['client_fps']['ODR_vs_RVS_pct']:+.1f}%"
    )
    lines.append(
        f"  MtP: ODR vs NoReg {data['mtp']['ODR_vs_NoReg_pct']:.1f}% faster, "
        f"vs Int {data['mtp']['ODR_vs_Int_pct']:.1f}%, vs RVS {data['mtp']['ODR_vs_RVS_pct']:.1f}%"
    )
    e = data["efficiency_720p_private"]
    lines.append(
        f"  720p private: IPC {e['ipc_improvement_pct']:+.1f}%, "
        f"miss {e['miss_rate_reduction_pct']:.1f}% lower, "
        f"DRAM read {e['read_time_reduction_pct']:.1f}% lower, "
        f"power {e['power_reduction_pct']:.1f}% lower"
    )
    return {"data": data, "text": "\n".join(lines)}
