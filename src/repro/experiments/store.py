"""The result-store layer: completed cells, keyed by content address.

A :class:`ResultStore` maps a cell's ``run_id`` — the ledger's
content-addressed hash over the canonical ``(config, seed)`` payload
(:func:`repro.obs.runmeta.run_id_for`) — to its finished
:class:`~repro.experiments.record.ExperimentRecord`.  It is the cache
every executor checks before running a cell, in two tiers:

* **in-memory** — always on; figures that share cells (most of them)
  reuse the same record object within one process, exactly like the
  old ``Runner._cache`` but keyed correctly (the run_id covers
  duration/warmup, which the old ``(benchmark, label, seed)`` key
  silently dropped);
* **on-disk** (opt-in via ``persist_dir``) — each completed cell is
  written through to ``<persist_dir>/<run_id>.json`` as it finishes,
  so a *different* process (a pool worker's parent, a later
  invocation) warm-starts from it.  ``odr-sim matrix --resume`` points
  this at ``<ledger>/cells/``: re-running after an interrupted sweep
  executes only the missing cells.

Persisted results are only as fresh as the code that produced them —
the run_id hashes the configuration, not the simulator.  Resume is
therefore opt-in, and :meth:`ResultStore.invalidate` clears a stale
cell (the ledger's append-only history is the durable record; the
store is a cache).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.experiments.record import (
    RECORD_DICT_SCHEMA,
    ExperimentRecord,
    record_as_dict,
    record_from_dict,
)

__all__ = ["ResultStore"]


class ResultStore:
    """Two-tier (memory + optional JSON-file) cache of finished cells."""

    def __init__(self, persist_dir: Optional[Union[str, Path]] = None) -> None:
        self._memory: Dict[str, ExperimentRecord] = {}
        self._exec_meta: Dict[str, Dict[str, Any]] = {}
        self.persist_dir: Optional[Path] = Path(persist_dir) if persist_dir else None
        #: Lookup accounting, reset with :meth:`reset_stats`.
        self.hits = 0
        self.misses = 0
        #: Observability hook: called as ``on_quarantine(run_id, path)``
        #: whenever a corrupt cell file is moved aside (the sweep event
        #: bus subscribes while an executor runs).
        self.on_quarantine: Optional[Callable[[str, str], None]] = None

    def cell_path(self, run_id: str) -> Optional[Path]:
        """Where ``run_id`` persists, or ``None`` for a memory-only store."""
        if self.persist_dir is None:
            return None
        return self.persist_dir / f"{run_id}.json"

    def get(self, run_id: str) -> Optional[ExperimentRecord]:
        """The stored record for ``run_id``, or ``None`` (counted as a miss)."""
        record = self._memory.get(run_id)
        if record is None:
            record = self._load(run_id)
            if record is not None:
                self._memory[run_id] = record
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(
        self,
        run_id: str,
        record: ExperimentRecord,
        exec_meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store a finished cell (written through to disk if persistent).

        ``exec_meta`` — execution-cost metadata (wall clock, CPU,
        RSS, ...) for a cell that actually simulated — rides along in
        the persisted JSON so cached-vs-executed cost stays queryable
        after the fact (:meth:`exec_meta`).  It is *not* part of the
        record and never affects cache identity.
        """
        self._memory[run_id] = record
        if exec_meta is not None:
            self._exec_meta[run_id] = dict(exec_meta)
        path = self.cell_path(run_id)
        if path is None:
            return
        os.makedirs(path.parent, exist_ok=True)
        payload: Dict[str, Any] = {
            "schema": RECORD_DICT_SCHEMA,
            "run_id": run_id,
            "record": record_as_dict(record),
        }
        if exec_meta is not None:
            payload["exec"] = dict(exec_meta)
        tmp = path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp, path)

    def exec_meta(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Execution-cost metadata persisted with ``run_id``, if any.

        Answers "what did this cached cell cost when it actually ran?"
        — the memory tier is consulted first, then the persisted JSON.
        Returns ``None`` for unknown cells and for cells stored before
        cost metadata existed.
        """
        meta = self._exec_meta.get(run_id)
        if meta is not None:
            return dict(meta)
        path = self.cell_path(run_id)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        meta = payload.get("exec")
        if isinstance(meta, dict):
            self._exec_meta[run_id] = meta
            return dict(meta)
        return None

    def quarantined(self) -> List[str]:
        """run_ids of corrupt cells moved to ``<persist_dir>/corrupt/``.

        These are cells whose persisted JSON failed to decode (torn
        writes from killed workers, full disks); the executor treats
        them as misses and re-runs them, and the evidence stays here
        for inspection.  Memory-only stores have none.
        """
        if self.persist_dir is None:
            return []
        corrupt_dir = self.persist_dir / "corrupt"
        if not corrupt_dir.is_dir():
            return []
        return sorted(path.stem for path in corrupt_dir.glob("*.json"))

    def invalidate(self, run_id: str) -> None:
        """Forget one cell (memory and disk)."""
        self._memory.pop(run_id, None)
        self._exec_meta.pop(run_id, None)
        path = self.cell_path(run_id)
        if path is not None and path.exists():
            path.unlink()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def __contains__(self, run_id: object) -> bool:
        if not isinstance(run_id, str):
            return False
        if run_id in self._memory:
            return True
        path = self.cell_path(run_id)
        return path is not None and path.exists()

    def __len__(self) -> int:
        """Cells resident in memory (disk cells load lazily on ``get``)."""
        return len(self._memory)

    # -- internals ---------------------------------------------------------

    def _load(self, run_id: str) -> Optional[ExperimentRecord]:
        path = self.cell_path(run_id)
        if path is None or not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError:
            # Unreadable file (permissions, races): a plain cache miss.
            return None
        except ValueError:
            # A torn write (killed worker, full disk) left bytes that
            # are not JSON.  Treat as a miss — the executor re-runs the
            # cell — but move the evidence aside so the rewrite cannot
            # race it and the corruption stays inspectable.
            self._quarantine(path, run_id)
            return None
        try:
            if not isinstance(payload, dict):
                return None
            if payload.get("schema") != RECORD_DICT_SCHEMA:
                return None
            if payload.get("run_id") != run_id:
                return None
            return record_from_dict(payload["record"])
        except (ValueError, KeyError, TypeError):
            # Valid JSON, stale shape (old record layout): a cache
            # miss; the re-executed cell overwrites it in place.
            return None

    def _quarantine(self, path: Path, run_id: str) -> None:
        corrupt_dir = path.parent / "corrupt"
        try:
            os.makedirs(corrupt_dir, exist_ok=True)
            os.replace(path, corrupt_dir / path.name)
        except OSError:
            return
        if self.on_quarantine is not None:
            self.on_quarantine(run_id, str(corrupt_dir / path.name))
        warnings.warn(
            f"result store: cell {run_id} failed to decode; "
            f"moved to {corrupt_dir / path.name} and will be re-executed",
            RuntimeWarning,
            stacklevel=3,
        )
