"""repro — a simulation-based reproduction of OnDemand Rendering (ODR).

Reproduces "Improving Resource and Energy Efficiency for Cloud 3D
through Excessive Rendering Reduction" (Liu et al., EuroSys 2024): a
complete discrete-event model of a cloud gaming / cloud VR pipeline,
the paper's three baseline FPS regulators, ODR itself, hardware
efficiency models (DRAM / IPC / power), and an experiment harness that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import CloudSystem, SystemConfig, make_regulator
    from repro.workloads import PRIVATE_CLOUD, Resolution

    config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1)
    result = CloudSystem(config, make_regulator("ODR60")).run()
    print(result.client_fps, result.fps_gap().mean_gap, result.mean_mtp_ms())
"""

from repro.core import OnDemandRendering
from repro.pipeline import CloudSystem, RunResult, SystemConfig
from repro.regulators import (
    IntervalMaxRegulator,
    IntervalRegulator,
    NoRegulation,
    Regulator,
    RemoteVsync,
    make_regulator,
)

__version__ = "1.0.0"

__all__ = [
    "CloudSystem",
    "IntervalMaxRegulator",
    "IntervalRegulator",
    "NoRegulation",
    "OnDemandRendering",
    "Regulator",
    "RemoteVsync",
    "RunResult",
    "SystemConfig",
    "make_regulator",
    "__version__",
]
