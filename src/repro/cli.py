"""Command-line interface: ``python -m repro`` / ``odr-sim``.

Subcommands::

    run         run one benchmark under one configuration and print metrics
    trace       run one configuration and write a Chrome/Perfetto trace
    figure      regenerate one of the paper's figures (1,3,4,5,6,7,9,...,13)
    table2      regenerate Table 2 (FPS gaps, all configurations)
    summary     regenerate the Sec. 6.6 overall summary
    userstudy   regenerate the Sec. 6.7 user study surrogate (Figs. 14-15)
    matrix      run the full 28-configuration matrix, export CSV

Sweep-shaped subcommands (``figure``, ``table2``, ``summary``,
``matrix``, ``bench``) plan their cells first and accept ``--workers N``
(process-pool execution, bit-identical to serial), ``--resume``
(persist completed cells under ``<ledger>/cells/`` and warm-start the
next invocation), ``--events`` (record sweep execution events to
``<ledger>/events.jsonl``), and ``--live`` (terminal dashboard while
the sweep runs); ``matrix`` additionally takes ``--benchmarks`` /
``--groups`` to run a reduced matrix.  Remaining subcommands::

    chaos       fault-injection chaos sweep: catalog fault classes ×
                regulator groups, scored into a resilience table
    compare     paired multi-seed comparison of two regulators
    consolidate multi-tenant sessions-per-server sweep
    breakdown   decompose MtP latency by pipeline component
    list        list benchmarks, platforms, and configuration labels
    lint        run the simlint determinism/DES-correctness static analysis
    analyze     whole-program determinism analyzer: call-graph purity
                dataflow, cache-key/schema drift checks, fork safety
                (text/json/sarif output, suppression baseline, cache)
    verify-determinism
                run one scenario twice under the same seed and compare
                schedule fingerprints
    profile     self-profile the engine: wall time per process, stage,
                and generator callsite, plus queue depth and events/sec
    bench       run the smoke benchmark matrix into the run ledger and
                write a machine-readable BENCH JSON
    runs        list the records in the run ledger, plus quarantined
                corrupt cells and the last sweep's failures
    watch       follow a running sweep's event log with the live dashboard
    sweep-trace export a whole-sweep Chrome trace (cells on worker lanes)
    cost        attribute a sweep's wall clock (pool warmup / cell skew /
                serialization) from its event log
    baseline    show or pin the ledger's baseline record
    compare-runs
                regression sentinel: statistically diff two run records
                (Mann-Whitney U + bootstrap CIs), exit 1 on regression

Service verbs (the sweep gateway, see ``docs/SERVICE.md``)::

    serve       host the async sweep gateway: one warm worker pool,
                cross-job in-flight dedupe, streamed telemetry
    submit      submit a matrix/bench/chaos plan to a running gateway
    status      list a gateway's jobs, or show one by id/prefix
    fetch       fetch one cell's record from a gateway by run_id

``watch --connect HOST:PORT`` follows a server-side job's event stream
with the same live dashboard it uses for local event logs.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.config import paper_configuration_matrix, platform_res_combos
from repro.experiments.executor import ExecutionError, make_executor
from repro.experiments.runner import Runner
from repro.experiments.store import ResultStore
from repro.faults.catalog import build_fault_plan, fault_class_names
from repro.obs.ledger import DEFAULT_LEDGER_DIR
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import BENCHMARKS, PLATFORMS, Resolution

__all__ = ["main"]

#: Default locations for the analyzer's checked-in suppression baseline
#: and its (gitignored) per-file-hash facts cache.
DEFAULT_ANALYZE_BASELINE = ".odr-analyze-baseline.json"
DEFAULT_ANALYZE_CACHE = ".odr-analyze-cache.json"


def _add_exec_args(sub: argparse.ArgumentParser) -> None:
    """The plan-executor knobs shared by every sweep-shaped subcommand."""
    sub.add_argument(
        "--workers", type=int, default=1,
        help="execute the cell plan over N worker processes (default: serial)",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help="persist completed cells under the ledger directory's cells/ "
             "store and reuse them across invocations (warm start)",
    )
    sub.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="fail any cell whose result takes longer than S seconds "
             "(parallel executor only)",
    )
    sub.add_argument(
        "--events", action="store_true",
        help="record sweep execution events (cell lifecycle, worker "
             "telemetry) to the ledger directory's events.jsonl",
    )
    sub.add_argument(
        "--live", action="store_true",
        help="show a live terminal dashboard while the sweep runs "
             "(implies --events persistence when a ledger is in play)",
    )


def _csv_items(values: List[str]) -> List[str]:
    """Flatten ``nargs`` tokens, splitting comma-separated ones.

    Lets list options take either form: ``--benchmarks STK IM`` or
    ``--benchmarks STK,IM``.
    """
    items: List[str] = []
    for value in values:
        items.extend(part for part in value.split(",") if part)
    return items


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="odr-sim",
        description="OnDemand Rendering (EuroSys'24) reproduction harness",
    )
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument(
        "--duration", type=float, default=20000.0, help="measured simulated time (ms)"
    )
    parser.add_argument(
        "--warmup", type=float, default=3000.0, help="warm-up simulated time (ms)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark under one configuration")
    run.add_argument("benchmark", choices=sorted(BENCHMARKS))
    run.add_argument("regulator", help="e.g. NoReg, Int60, RVSMax, ODR30, ODRMax-noPri")
    run.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    run.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )

    trace = sub.add_parser(
        "trace",
        help="run one configuration with telemetry and write a Chrome trace",
    )
    trace.add_argument("--benchmark", choices=sorted(BENCHMARKS), required=True)
    trace.add_argument(
        "--regulator", required=True, help="e.g. NoReg, Int60, RVSMax, ODR60, odr"
    )
    trace.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    trace.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    trace.add_argument(
        "-o", "--output", required=True,
        help="Chrome Trace Format output path (open in chrome://tracing or Perfetto)",
    )
    trace.add_argument(
        "--jsonl", help="also write a JSONL telemetry dump to this path"
    )
    trace.add_argument(
        "--no-probe", action="store_true",
        help="skip engine-level probing (events, heap depth, wall clock)",
    )

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument(
        "number",
        choices=["1", "3", "4", "5", "6", "7", "9", "10", "11", "12", "13"],
    )
    _add_exec_args(fig)

    table2_cmd = sub.add_parser("table2", help="regenerate Table 2 (FPS gaps)")
    _add_exec_args(table2_cmd)
    summary_cmd = sub.add_parser(
        "summary", help="regenerate the Sec. 6.6 overall summary"
    )
    _add_exec_args(summary_cmd)
    sub.add_parser("userstudy", help="regenerate the user study surrogate")
    sub.add_parser("list", help="list benchmarks, platforms, configurations")

    matrix = sub.add_parser(
        "matrix", help="run the full 28-configuration matrix and export CSV"
    )
    matrix.add_argument("output", help="destination CSV path")
    matrix.add_argument("--ablation", action="store_true",
                        help="include the ODRMax-noPri rows")
    matrix.add_argument(
        "--benchmarks", nargs="+", choices=sorted(BENCHMARKS),
        help="restrict to these benchmarks (reduced matrix)",
    )
    matrix.add_argument(
        "--groups", nargs="+",
        choices=[c.label for c in platform_res_combos()],
        help="restrict to these platform-resolution groups (reduced matrix)",
    )
    matrix.add_argument(
        "--telemetry-dir",
        help="also persist per-cell Chrome traces + JSONL telemetry here",
    )
    matrix.add_argument(
        "--ledger",
        help="append every cell's run record to this run-ledger directory",
    )
    _add_exec_args(matrix)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection chaos sweep: fault classes x regulators, "
             "scored into a resilience table",
    )
    chaos.add_argument(
        "--benchmarks", nargs="+", default=["STK", "IM"],
        help="benchmarks to disturb (space- or comma-separated)",
    )
    chaos.add_argument(
        "--groups", nargs="+", default=["NoReg", "Int60", "ODR60"],
        help="regulator specs to contrast (space- or comma-separated)",
    )
    chaos.add_argument(
        "--faults", nargs="+", default=None, metavar="CLASS",
        help="fault classes to inject (default: the whole catalog: "
             + ", ".join(fault_class_names()) + ")",
    )
    chaos.add_argument(
        "--seeds", type=int, nargs="+", default=[1], help="seeds per cell"
    )
    chaos.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    chaos.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    chaos.add_argument(
        "--no-baseline", action="store_true",
        help="skip the fault-free contrast cells",
    )
    chaos.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                       help="run-ledger directory")
    chaos.add_argument(
        "-o", "--output", default="CHAOS_report.json",
        help="machine-readable resilience report path",
    )
    _add_exec_args(chaos)

    compare = sub.add_parser(
        "compare", help="paired multi-seed comparison of two regulators"
    )
    compare.add_argument("benchmark", choices=sorted(BENCHMARKS))
    compare.add_argument("regulator_a")
    compare.add_argument("regulator_b")
    compare.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    compare.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    compare.add_argument("--seeds", type=int, default=5, help="number of seeds")

    consolidate = sub.add_parser(
        "consolidate", help="multi-tenant consolidation sweep on one server"
    )
    consolidate.add_argument("regulator", help="per-session regulator spec")
    consolidate.add_argument("--max-sessions", type=int, default=4)
    consolidate.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    consolidate.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )

    breakdown = sub.add_parser(
        "breakdown", help="decompose MtP latency by pipeline component"
    )
    breakdown.add_argument("benchmark", choices=sorted(BENCHMARKS))
    breakdown.add_argument("regulator")
    breakdown.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    breakdown.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )

    lint = sub.add_parser(
        "lint",
        help="simlint: determinism & DES-correctness static analysis",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
        help="output format",
    )
    lint.add_argument(
        "--select",
        help="comma-separated rule ids to run (e.g. R1,R2); default: all",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    analyze = sub.add_parser(
        "analyze",
        help="whole-program determinism analyzer: purity dataflow, "
             "contract drift, fork safety",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src/repro", "tests"],
        help="files or directories to analyze (default: src/repro tests)",
    )
    analyze.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="fmt", help="output format",
    )
    analyze.add_argument(
        "--select",
        help="comma-separated rule ids to run (e.g. P1,C1); default: all",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    analyze.add_argument(
        "--explain", metavar="RULE",
        help="print the long-form explanation for one rule and exit",
    )
    analyze.add_argument(
        "--baseline", default=DEFAULT_ANALYZE_BASELINE,
        help="suppression baseline file (default: %(default)s); "
             "'none' disables",
    )
    analyze.add_argument(
        "--write-baseline", action="store_true",
        help="adopt every current finding into the baseline file and exit 0",
    )
    analyze.add_argument(
        "--cache", default=DEFAULT_ANALYZE_CACHE,
        help="per-file-hash facts cache (default: %(default)s); "
             "'none' disables",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the facts cache",
    )
    analyze.add_argument(
        "--stats", action="store_true",
        help="print cache hit/miss and timing stats to stderr",
    )

    verify = sub.add_parser(
        "verify-determinism",
        help="run a scenario twice under one seed; fail if schedules diverge",
    )
    verify.add_argument("--benchmark", choices=sorted(BENCHMARKS), default="IM")
    verify.add_argument("--regulator", default="ODR60")
    verify.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    verify.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    verify.add_argument(
        "--fault-class", choices=fault_class_names(), default=None,
        help="inject this catalog fault class into both runs (the fault "
             "machinery must be deterministic too)",
    )

    profile = sub.add_parser(
        "profile",
        help="self-profile the engine: wall time per process/stage/callsite",
    )
    profile.add_argument("--benchmark", choices=sorted(BENCHMARKS), default="IM")
    profile.add_argument("--regulator", default="ODR60")
    profile.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    profile.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    profile.add_argument(
        "--top", type=int, default=10, help="generator callsites to show"
    )
    profile.add_argument(
        "--depth-sample", type=float, default=250.0,
        help="queue-depth sample bucket width (simulated ms)",
    )
    profile.add_argument(
        "--trace",
        help="also write a Chrome trace with the self-profiler overlay",
    )
    profile.add_argument(
        "--json", action="store_true", help="emit the profile summary as JSON"
    )

    bench = sub.add_parser(
        "bench",
        help="run the smoke benchmark matrix into the ledger; write BENCH JSON",
    )
    bench.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                       help="run-ledger directory")
    bench.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2], help="seeds per cell"
    )
    bench.add_argument(
        "--benchmarks", nargs="+", choices=sorted(BENCHMARKS), default=["IM", "STK"]
    )
    bench.add_argument(
        "--regulators", nargs="+", default=["NoReg", "ODR60"],
        help="regulator specs per cell",
    )
    bench.add_argument("--platform", choices=sorted(PLATFORMS), default="private")
    bench.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default="720p"
    )
    bench.add_argument(
        "-o", "--output", default="BENCH_pr.json",
        help="machine-readable benchmark report path",
    )
    _add_exec_args(bench)

    runs_cmd = sub.add_parser("runs", help="list the run ledger's records")
    runs_cmd.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                          help="run-ledger directory")

    watch = sub.add_parser(
        "watch",
        help="follow a running sweep's event log with the live dashboard",
    )
    watch.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                       help="run-ledger directory (reads its events.jsonl)")
    watch.add_argument(
        "--events-file", default=None,
        help="explicit events.jsonl path (overrides --ledger)",
    )
    watch.add_argument(
        "--poll", type=float, default=0.25, metavar="S",
        help="tail poll interval in seconds",
    )
    watch.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="give up after S seconds with no new events (default: wait "
             "forever; press q or Ctrl-C to leave)",
    )
    watch.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="stream from a running sweep gateway instead of a local "
             "event log",
    )
    watch.add_argument(
        "--job", default=None, metavar="ID",
        help="with --connect: job id or unique prefix to follow "
             "(default: the newest submission)",
    )
    watch.add_argument(
        "--connect-wait", type=float, default=5.0, metavar="S",
        help="with --connect: keep dialing a not-yet-listening gateway "
             "for S seconds (default: %(default)s)",
    )
    watch.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="with --connect: attempts per request, and stream "
             "reconnections, on retryable failures (default: %(default)s)",
    )

    sweep_trace = sub.add_parser(
        "sweep-trace",
        help="export a whole-sweep Chrome trace (cells as spans on "
             "worker lanes) from the sweep event log",
    )
    sweep_trace.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                             help="run-ledger directory (reads its events.jsonl)")
    sweep_trace.add_argument(
        "--events-file", default=None,
        help="explicit events.jsonl path (overrides --ledger)",
    )
    sweep_trace.add_argument(
        "--sweep", default=None, metavar="ID",
        help="sweep id (or unique prefix) to export (default: the latest)",
    )
    sweep_trace.add_argument(
        "-o", "--output", required=True,
        help="Chrome Trace Format output path (open in chrome://tracing "
             "or Perfetto)",
    )

    cost = sub.add_parser(
        "cost",
        help="attribute a sweep's wall clock: pool warmup vs cell skew "
             "vs serialization, with per-cell resource rows",
    )
    cost.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                      help="run-ledger directory (reads its events.jsonl)")
    cost.add_argument(
        "--events-file", default=None,
        help="explicit events.jsonl path (overrides --ledger)",
    )
    cost.add_argument(
        "--sweep", default=None, metavar="ID",
        help="sweep id (or unique prefix) to report on (default: the latest)",
    )
    cost.add_argument(
        "--top", type=int, default=10, help="slowest cells to list"
    )
    cost.add_argument(
        "-o", "--output", default=None,
        help="also write the full cost report as JSON to this path",
    )

    baseline = sub.add_parser(
        "baseline", help="show or pin the ledger's baseline record"
    )
    baseline.add_argument(
        "ref", nargs="?",
        help="run ref to promote (run-id prefix, latest, latest~N, or a "
             "record JSON path); omit to show the current baseline",
    )
    baseline.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                          help="run-ledger directory")

    compare_runs = sub.add_parser(
        "compare-runs",
        help="regression sentinel: statistically diff two run records",
    )
    compare_runs.add_argument(
        "run_a",
        help="reference run: run-id prefix, 'latest', 'latest~N', "
             "'baseline', or a record JSON path",
    )
    compare_runs.add_argument(
        "run_b", nargs="?", default="latest",
        help="candidate run (default: latest)",
    )
    compare_runs.add_argument("--ledger", default=DEFAULT_LEDGER_DIR,
                              help="run-ledger directory")
    compare_runs.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt",
        help="output format",
    )
    compare_runs.add_argument(
        "--alpha", type=float, default=0.01,
        help="Mann-Whitney significance level",
    )
    compare_runs.add_argument(
        "--tolerance", type=float, default=0.02,
        help="relative mean shift below which a significant change is ignored",
    )
    compare_runs.add_argument(
        "--resamples", type=int, default=2000, help="bootstrap resamples"
    )

    from repro.service.cli import add_service_parsers

    add_service_parsers(sub)
    return parser


def _cmd_run(args: argparse.Namespace) -> str:
    config = SystemConfig(
        benchmark=args.benchmark,
        platform=PLATFORMS[args.platform],
        resolution=Resolution(args.resolution),
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
    )
    result = CloudSystem(config, make_regulator(args.regulator)).run()
    gap = result.fps_gap()
    lines = [
        f"benchmark={args.benchmark} platform={args.platform} "
        f"resolution={args.resolution} regulator={args.regulator}",
        f"  render FPS : {result.render_fps:8.1f}",
        f"  encode FPS : {result.encode_fps:8.1f}",
        f"  client FPS : {result.client_fps:8.1f}",
        f"  FPS gap    : {gap.mean_gap:8.1f} (max {gap.max_gap:.1f})",
        f"  bandwidth  : {result.bandwidth_mbps():8.1f} Mbps",
    ]
    samples = result.mtp_samples()
    if samples:
        box = result.mtp_box()
        lines.append(f"  MtP latency: {result.mean_mtp_ms():8.1f} ms (p99 {box.p99:.1f})")
    from repro.hardware import evaluate_hardware

    hw = evaluate_hardware(result)
    lines.append(
        f"  hardware   : miss {hw.dram.row_miss_rate*100:.1f}%  "
        f"read {hw.dram.read_access_ns:.1f} ns  IPC {hw.ipc:.2f}  "
        f"power {hw.power.total_w:.1f} W"
    )
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs import Telemetry, write_chrome_trace, write_jsonl

    telemetry = Telemetry(engine_probe=not args.no_probe)
    config = SystemConfig(
        benchmark=args.benchmark,
        platform=PLATFORMS[args.platform],
        resolution=Resolution(args.resolution),
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
    )
    regulator = make_regulator(args.regulator)
    CloudSystem(config, regulator, telemetry=telemetry).run()

    n_events = write_chrome_trace(telemetry, args.output)
    snapshot = telemetry.snapshot()
    displayed = snapshot.counter_value("frames_displayed_total")
    spans = telemetry.spans
    lines = [
        f"benchmark={args.benchmark} platform={args.platform} "
        f"resolution={args.resolution} regulator={regulator.name}",
        f"  spans      : {len(spans)} frames "
        f"({displayed:.0f} displayed, {len(spans.spans(dropped=True))} dropped)",
    ]
    for key, value in sorted(snapshot.counters.items(), key=lambda i: str(i[0])):
        if key.name == "frames_dropped_total":
            lines.append(f"  drops      : {key.label('reason')} x {value:.0f}")
    gate = snapshot.histogram_stats("gate_delay_ms")
    if gate.count:
        lines.append(
            f"  gate delay : mean {gate.mean:.2f} ms  p99 {gate.p99:.2f} ms"
        )
    if telemetry.probe is not None:
        probe = telemetry.probe.summary()
        wall = probe["wall_per_sim_second_mean"]
        lines.append(
            f"  engine     : {probe['events_fired']} events fired, "
            f"heap depth {probe['max_heap_depth']}, "
            f"{probe['processes_started']} processes"
            + (f", {wall * 1000:.2f} ms wall/sim-s" if wall is not None else "")
        )
    lines.append(f"  wrote {n_events} trace events to {args.output}")
    if args.jsonl:
        n_lines = write_jsonl(telemetry, args.jsonl)
        lines.append(f"  wrote {n_lines} JSONL records to {args.jsonl}")
    return "\n".join(lines)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.simlint import RULES, lint_paths

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    select = args.select.split(",") if args.select else None
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(report.to_json())
    else:
        for finding in report.findings:
            print(finding.render())
        counts = ", ".join(f"{r}: {n}" for r, n in sorted(report.counts().items()))
        print(
            f"simlint: {len(report.findings)} finding(s) in "
            f"{report.files_scanned} file(s)" + (f"  [{counts}]" if counts else "")
        )
    return 0 if report.ok else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.devtools.analyzer import RULES, analyze, explain, to_sarif
    from repro.devtools.analyzer.baseline import write_baseline_payload

    if args.list_rules:
        for rule, summary in sorted(RULES.items()):
            print(f"{rule}  {summary}")
        return 0
    if args.explain:
        text = explain(args.explain)
        if text is None:
            print(f"analyze: unknown rule {args.explain!r}", file=sys.stderr)
            return 2
        print(text)
        return 0
    select = args.select.split(",") if args.select else None
    baseline_path = None if args.baseline == "none" else args.baseline
    baseline_text = None
    if baseline_path is not None and not args.write_baseline:
        try:
            with open(baseline_path, "r", encoding="utf-8") as handle:
                baseline_text = handle.read()
        except FileNotFoundError:
            baseline_text = None
    cache_path = None if (args.no_cache or args.cache == "none") else args.cache
    try:
        report = analyze(
            args.paths,
            select=select,
            baseline_text=baseline_text,
            cache_path=cache_path,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        if baseline_path is None:
            print("analyze: --write-baseline needs a baseline path", file=sys.stderr)
            return 2
        with open(baseline_path, "w", encoding="utf-8") as handle:
            handle.write(write_baseline_payload(list(report.findings)))
        print(
            f"analyze: wrote {len(report.findings)} entr(y/ies) to {baseline_path}"
        )
        return 0
    if args.fmt == "json":
        print(report.to_json())
    elif args.fmt == "sarif":
        print(to_sarif(list(report.findings)))
    else:
        for finding in report.findings:
            print(finding.render())
        print(report.summary_line())
    if args.stats:
        print(
            f"analyze: {report.files_scanned} file(s) in "
            f"{report.elapsed_s:.2f}s (cache: {report.cache_hits} hit(s), "
            f"{report.cache_misses} miss(es))",
            file=sys.stderr,
        )
    return 0 if report.ok else 1


def _cmd_verify_determinism(args: argparse.Namespace) -> int:
    from repro.devtools.determinism import verify_determinism

    fault_plan = None
    if args.fault_class:
        fault_plan = build_fault_plan(args.fault_class, args.duration, args.warmup)
    report = verify_determinism(
        seed=args.seed,
        benchmark=args.benchmark,
        regulator=args.regulator,
        platform=args.platform,
        resolution=args.resolution,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        fault_plan=fault_plan,
    )
    if args.fault_class:
        print(f"fault class: {args.fault_class}")
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """The chaos sweep: catalog fault classes × regulator groups.

    Cells execute through the same plan/store/ledger core as every
    other sweep — ``--resume`` warm-starts from ``<ledger>/cells/``,
    ``--workers``/``--cell-timeout`` harden the fan-out — and the
    aggregated resilience table lands on stdout plus a JSON report.
    Failed cells are enumerated on stderr and exit non-zero; a
    follow-up ``--resume`` run executes only what is missing.
    """
    import json

    from repro.experiments.chaos import (
        chaos_demands,
        render_resilience,
        resilience_payload,
        resilience_rows,
    )
    from repro.obs import RunLedger, git_revision

    benchmarks = _csv_items(args.benchmarks)
    regulators = _csv_items(args.groups)
    unknown = sorted(set(benchmarks) - set(BENCHMARKS))
    if unknown:
        print(f"chaos: unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    fault_classes = _csv_items(args.faults) if args.faults else None
    if fault_classes:
        bad = sorted(set(fault_classes) - set(fault_class_names()))
        if bad:
            print(f"chaos: unknown fault class(es): {', '.join(bad)}", file=sys.stderr)
            return 2

    plan = chaos_demands(
        benchmarks=benchmarks,
        regulators=regulators,
        fault_classes=fault_classes,
        seeds=args.seeds,
        platform=args.platform,
        resolution=args.resolution,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        include_baseline=not args.no_baseline,
    )
    store = ResultStore(os.path.join(args.ledger, "cells")) if args.resume else None
    executor = make_executor(args.workers, cell_timeout_s=args.cell_timeout)
    ledger = RunLedger(args.ledger)
    bus = _sweep_bus(args)
    try:
        report = executor.run(
            plan, store=store, ledger=ledger, git_rev=git_revision(), bus=bus
        )
    finally:
        if bus is not None:
            bus.close()
    if bus is not None and bus.path is not None:
        print(f"chaos: sweep events at {bus.path} (sweep {bus.sweep_id})")

    rows = resilience_rows(report.outcomes)
    print(render_resilience(rows))
    print(f"chaos: {report.describe()}; ledger at {ledger.path}")
    for failure in report.failures:
        print(
            f"chaos: FAILED {failure.spec.label} ({failure.spec.run_id}) "
            f"after {failure.attempts} attempt(s): {failure.error}",
            file=sys.stderr,
        )

    payload = resilience_payload(rows)
    payload["git_rev"] = git_revision()
    payload["duration_ms"] = args.duration
    payload["warmup_ms"] = args.warmup
    payload["seeds"] = list(args.seeds)
    payload["failed_cells"] = [f.spec.run_id for f in report.failures]
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print(f"chaos: wrote resilience report to {args.output}")
    return 0 if report.ok else 1


def _cmd_profile(args: argparse.Namespace) -> str:
    import json

    from repro.obs import SimProfiler, Telemetry, write_chrome_trace

    telemetry = Telemetry()
    profiler = SimProfiler(depth_sample_ms=args.depth_sample)
    telemetry.probe = profiler
    config = SystemConfig(
        benchmark=args.benchmark,
        platform=PLATFORMS[args.platform],
        resolution=Resolution(args.resolution),
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
    )
    system = CloudSystem(config, make_regulator(args.regulator), telemetry=telemetry)
    profiler.start()
    system.run()
    profiler.finish()

    if args.json:
        return json.dumps(profiler.summary(), sort_keys=True, indent=2)
    lines = [
        f"benchmark={args.benchmark} platform={args.platform} "
        f"resolution={args.resolution} regulator={args.regulator}",
        profiler.report(top_k=args.top),
    ]
    if args.trace:
        n_events = write_chrome_trace(telemetry, args.trace, profiler=profiler)
        lines.append(f"wrote {n_events} trace events (with overlay) to {args.trace}")
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> int:
    """The smoke benchmark matrix, via the plan/execute core.

    The plan runs with :class:`SerialExecutor`; with ``--workers N > 1``
    it runs *twice more* through :class:`ParallelExecutor` on fresh
    stores — once cold (pool spawned inside the measured window,
    one cell per submission: the pre-service dispatch policy) and once
    against a pre-warmed shared :class:`WorkerPool` with auto-sized
    chunking (the policy ``odr-sim serve`` runs every job under) — and
    the report gains an ``executor_comparison`` section with both wall
    clocks, both speedups, the chunk size, the warmup cost, and a
    three-way bit-identity check, so executor throughput regressions
    gate like any other benchmark number.
    """
    import json
    import os as _os

    from repro.experiments import (
        ParallelExecutor,
        ResultStore,
        SerialExecutor,
        WorkerPool,
        bench_demands,
        resolve_chunk,
    )
    from repro.obs import RunLedger, git_revision, host_wallclock, metrics_digest

    ledger = RunLedger(args.ledger)
    git_rev = git_revision()
    plan = bench_demands(
        benchmarks=args.benchmarks,
        regulators=args.regulators,
        seeds=args.seeds,
        platform=args.platform,
        resolution=args.resolution,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
    )
    started = host_wallclock()
    serial_report = SerialExecutor().run(
        plan, store=ResultStore(), ledger=ledger, git_rev=git_rev
    )
    serial_wall = host_wallclock() - started

    # With --events/--live the *measured* leg (parallel when workers > 1,
    # serial otherwise) runs with the sweep event bus attached, and the
    # report gains a cost-attribution block.  The observed parallel leg
    # also pays the plane's enabled cost (manager spawn, queue hops), so
    # the speedup it reports is the *observed* speedup — the cost block
    # exists precisely to itemize that; run without --events for the
    # bare number.
    bus = _sweep_bus(args)
    cost_block = None

    chosen = serial_report
    comparison = None
    if args.workers > 1:
        from repro.obs.sweep import SweepEventBus

        # The "before" leg: pool spawn inside the measured window, one
        # cell per submission.  When observation is on it pays the same
        # event-plane cost as the warm leg — including persistence, to
        # a throwaway file so the real events.jsonl only carries the
        # measured sweep — so the cold-vs-warm delta isolates dispatch
        # policy, not events.
        cold_bus = None
        cold_events = None
        if bus is not None:
            if bus.path is not None:
                import tempfile

                fd, cold_events = tempfile.mkstemp(suffix=".jsonl")
                _os.close(fd)
            cold_bus = SweepEventBus(path=cold_events)
        try:
            started = host_wallclock()
            cold_report = ParallelExecutor(args.workers, chunk=1).run(
                plan, store=ResultStore(), ledger=ledger, git_rev=git_rev,
                bus=cold_bus,
            )
            cold_wall = host_wallclock() - started
            if cold_bus is not None:
                cold_bus.close()
        finally:
            if cold_events is not None:
                _os.unlink(cold_events)

        # The "after" leg: the service dispatch policy — a pre-warmed
        # shared pool (warmup paid once, outside the measured window
        # but recorded) and chunked submissions.
        chunk = resolve_chunk(len(plan), args.workers)
        pool = WorkerPool(args.workers, events=bus is not None)
        try:
            started = host_wallclock()
            pool.warm()
            pool_warm_s = host_wallclock() - started
            started = host_wallclock()
            parallel_report = ParallelExecutor(
                args.workers, chunk=chunk, pool=pool
            ).run(plan, store=ResultStore(), ledger=ledger, git_rev=git_rev, bus=bus)
            parallel_wall = host_wallclock() - started
        finally:
            pool.close()
        identical = all(
            a.record == b.record == c.record
            and a.ledger_record is not None
            and b.ledger_record is not None
            and c.ledger_record is not None
            and metrics_digest(a.ledger_record)
            == metrics_digest(b.ledger_record)
            == metrics_digest(c.ledger_record)
            for a, b, c in zip(
                serial_report.outcomes,
                cold_report.outcomes,
                parallel_report.outcomes,
            )
        )
        comparison = {
            "workers": args.workers,
            "host_cpus": _os.cpu_count(),
            "cells": len(plan),
            "chunk": chunk,
            "serial_wall_clock_s": serial_wall,
            "parallel_cold_wall_clock_s": cold_wall,
            "parallel_wall_clock_s": parallel_wall,
            "pool_warm_s": pool_warm_s,
            "speedup_cold": serial_wall / cold_wall if cold_wall > 0 else None,
            "speedup": serial_wall / parallel_wall if parallel_wall > 0 else None,
            "bit_identical": identical,
        }
        chosen = parallel_report
        print(
            f"  executors: serial {serial_wall:.2f} s vs "
            f"parallel(x{args.workers}) cold {cold_wall:.2f} s "
            f"({comparison['speedup_cold']:.2f}x) vs "
            f"warm+chunk={chunk} {parallel_wall:.2f} s "
            f"({comparison['speedup']:.2f}x, warmup {pool_warm_s:.2f} s, "
            f"{'bit-identical' if identical else 'DIVERGED'})"
        )
        if not identical:
            print("bench: parallel output diverged from serial", file=sys.stderr)
            return 1
    elif bus is not None:
        # No parallel leg: re-run the serial sweep observed (cells are
        # cheap at bench scale) so --events still yields an event log.
        SerialExecutor().run(plan, store=ResultStore(), git_rev=git_rev, bus=bus)
    if bus is not None:
        from repro.obs.cost import sweep_cost

        bus.close()
        cost_block = sweep_cost(bus.events)
        if bus.path is not None:
            print(f"  sweep events at {bus.path} (sweep {bus.sweep_id})")

    cells = []
    for outcome in chosen.outcomes:
        record = outcome.ledger_record
        assert record is not None  # fresh stores: every cell executed
        engine = record.get("engine", {})
        events_fired = engine.get("events_fired")
        events_per_sec = engine.get("events_per_sec")
        cells.append(
            {
                "run_id": record["run_id"],
                "benchmark": outcome.spec.benchmark,
                "regulator": outcome.spec.regulator,
                "seed": outcome.spec.seed,
                "wall_clock_s": outcome.wall_clock_s,
                "events_fired": events_fired,
                "events_per_sec": events_per_sec,
                "client_fps": record["metrics"]["client_fps"],
                "fps_gap_mean": record["metrics"]["fps_gap_mean"],
                "mtp_mean_ms": record["metrics"]["mtp_mean_ms"],
            }
        )
        print(
            f"  {outcome.spec.benchmark}/{outcome.spec.regulator} "
            f"seed={outcome.spec.seed}: "
            f"{events_fired} events in {outcome.wall_clock_s:.2f} s"
            + (
                f" ({events_per_sec:,.0f} events/s)"
                if events_per_sec is not None
                else ""
            )
            + f"  -> {record['run_id']}"
        )
    # The disabled-overhead guard: what the sweep event plane costs a
    # sweep that never asked for it, as a fraction of a typical cell.
    from repro.obs.sweep import disabled_overhead_report

    executed_walls = [o.wall_clock_s for o in chosen.outcomes if not o.cached]
    mean_cell_wall = (
        sum(executed_walls) / len(executed_walls) if executed_walls else 0.0
    )
    events_plane = disabled_overhead_report(mean_cell_wall)
    print(
        f"  events plane (disabled): {events_plane['per_emit_ns']:.0f} ns/emit, "
        f"{events_plane['disabled_overhead_frac']:.2e} of a "
        f"{mean_cell_wall:.3f} s cell (budget {events_plane['budget_frac']:.0%}, "
        f"{'ok' if events_plane['ok'] else 'OVER BUDGET'})"
    )

    report = {
        "schema": 1,
        "git_rev": git_rev,
        "platform": args.platform,
        "resolution": args.resolution,
        "duration_ms": args.duration,
        "warmup_ms": args.warmup,
        "total_wall_clock_s": sum(c["wall_clock_s"] for c in cells),
        "cells": cells,
        "events_plane": events_plane,
    }
    if comparison is not None:
        if cost_block is not None:
            comparison["cost"] = cost_block
        report["executor_comparison"] = comparison
    elif cost_block is not None:
        report["sweep_cost"] = cost_block
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, sort_keys=True, indent=2)
        handle.write("\n")
    print(
        f"bench: {len(cells)} cell(s), "
        f"{report['total_wall_clock_s']:.2f} s total wall clock; "
        f"ledger at {ledger.path}, report at {args.output}"
    )
    return 0


def _describe_record(record: dict) -> str:
    metrics = record.get("metrics", {})
    wall = record.get("wall_clock_s")
    return (
        f"{record.get('run_id', '?'):16s} seed={record.get('seed', '?'):<3} "
        f"{str(record.get('label', '')):24s} "
        f"client {metrics.get('client_fps', float('nan')):6.1f} FPS  "
        f"gap {metrics.get('fps_gap_mean', float('nan')):6.1f}"
        + (f"  {wall:6.2f} s" if isinstance(wall, (int, float)) else "")
        + (f"  @{record['git_rev']}" if record.get("git_rev") else "")
    )


def _cmd_runs(args: argparse.Namespace) -> int:
    from repro.obs import RunLedger

    ledger = RunLedger(args.ledger)
    records = ledger.records()
    if records:
        for record in records:
            print(_describe_record(record))
        baseline = ledger.baseline()
        print(f"{len(records)} record(s) in {ledger.path}")
        if baseline is not None:
            print(f"baseline: {baseline.get('run_id')} ({baseline.get('label', '')})")
    else:
        print(f"runs: ledger {ledger.path} is empty")

    # The parts an all-green listing would hide: corrupt cells the store
    # quarantined, and cells the last recorded sweep failed to execute.
    quarantined = ResultStore(os.path.join(args.ledger, "cells")).quarantined()
    if quarantined:
        print(f"quarantined corrupt cell(s) under {args.ledger}/cells/corrupt/:")
        for run_id in quarantined:
            print(f"  {run_id}  (will re-execute on the next resume)")
    failures = _last_sweep_failures(args.ledger)
    if failures:
        print("failed cell(s) in the last recorded sweep:")
        for line in failures:
            print(f"  {line}")
    return 0


def _last_sweep_failures(ledger_dir: str) -> List[str]:
    """Failure lines from the newest sweep in ``<ledger>/events.jsonl``."""
    from repro.obs import sweep as sweepbus
    from repro.obs.sweep import events_path_for, read_events

    path = events_path_for(ledger_dir)
    if not os.path.exists(path):
        return []
    try:
        events = read_events(path)
    except (OSError, ValueError):
        return []
    lines: List[str] = []
    for event in events:
        if event.kind == sweepbus.CELL_FAILED:
            lines.append(
                f"{event.get('label', event.run_id)} [{event.run_id}]: "
                f"{event.get('error', '?')} "
                f"(after {event.get('attempts', '?')} attempt(s))"
            )
        elif event.kind == sweepbus.CELL_TIMED_OUT:
            lines.append(
                f"{event.get('label', event.run_id)} [{event.run_id}]: "
                f"timed out after {event.get('timeout_s')}s"
            )
    return lines


def _events_file(args: argparse.Namespace) -> str:
    """The events.jsonl a telemetry subcommand should read."""
    from repro.obs.sweep import events_path_for

    explicit = getattr(args, "events_file", None)
    if explicit:
        return str(explicit)
    return events_path_for(args.ledger)


def _cmd_watch(args: argparse.Namespace) -> int:
    if args.connect:
        from repro.service.cli import watch_remote

        return watch_remote(args)
    from repro.obs.dashboard import SweepDashboard, follow_events

    path = _events_file(args)
    print(f"watch: following {path} (q or Ctrl-C to leave)")
    dashboard = SweepDashboard()
    try:
        consumed = follow_events(
            path,
            dashboard,
            poll_s=args.poll,
            timeout_s=args.timeout,
        )
    except KeyboardInterrupt:
        print()
        return 0
    if consumed == 0:
        print(f"watch: no events at {path}")
        return 1
    return 0


def _cmd_sweep_trace(args: argparse.Namespace) -> int:
    from repro.obs.sweep import read_events
    from repro.obs.sweeptrace import write_sweep_trace

    path = _events_file(args)
    try:
        events = read_events(path, sweep_id=args.sweep)
    except OSError:
        print(f"sweep-trace: no event log at {path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"sweep-trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"sweep-trace: no events in {path}", file=sys.stderr)
        return 2
    count = write_sweep_trace(events, args.output)
    print(
        f"wrote {count} trace event(s) for sweep {events[0].sweep_id} "
        f"to {args.output}"
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    import json

    from repro.obs.cost import render_cost, sweep_cost
    from repro.obs.sweep import read_events

    path = _events_file(args)
    try:
        events = read_events(path, sweep_id=args.sweep)
    except OSError:
        print(f"cost: no event log at {path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"cost: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"cost: no events in {path}", file=sys.stderr)
        return 2
    report = sweep_cost(events)
    print(render_cost(report, top=args.top))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"cost: wrote JSON report to {args.output}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from repro.obs import RunLedger, resolve_record

    ledger = RunLedger(args.ledger)
    if args.ref is None:
        baseline = ledger.baseline()
        if baseline is None:
            print(f"baseline: none pinned at {ledger.baseline_path}")
            return 1
        print(_describe_record(baseline))
        return 0
    try:
        record = resolve_record(args.ref, ledger)
    except (OSError, ValueError) as exc:
        print(f"baseline: {exc}", file=sys.stderr)
        return 2
    path = ledger.set_baseline(record)
    print(f"pinned {record.get('run_id')} ({record.get('label', '')}) at {path}")
    return 0


def _cmd_compare_runs(args: argparse.Namespace) -> int:
    from repro.obs import RunLedger, compare_records, resolve_record

    ledger = RunLedger(args.ledger)
    try:
        record_a = resolve_record(args.run_a, ledger)
        record_b = resolve_record(args.run_b, ledger)
    except (OSError, ValueError) as exc:
        print(f"compare-runs: {exc}", file=sys.stderr)
        return 2
    report = compare_records(
        record_a,
        record_b,
        alpha=args.alpha,
        tolerance=args.tolerance,
        resamples=args.resamples,
    )
    if args.fmt == "json":
        print(report.to_json())
    else:
        print(report.describe())
    return 0 if report.ok else 1


def _sweep_bus(args: argparse.Namespace):
    """Build the sweep event bus a subcommand asked for, or ``None``.

    ``--events`` persists execution events to the ledger directory's
    ``events.jsonl`` (the artifact ``watch`` / ``sweep-trace`` /
    ``cost`` read); ``--live`` additionally attaches the terminal
    dashboard.  Without either flag, executors run with no bus at all —
    the zero-overhead default.
    """
    wants_events = getattr(args, "events", False)
    wants_live = getattr(args, "live", False)
    if not (wants_events or wants_live):
        return None
    from repro.obs.sweep import SweepEventBus, events_path_for

    path = None
    if wants_events:
        ledger_dir = getattr(args, "ledger", None) or DEFAULT_LEDGER_DIR
        path = events_path_for(ledger_dir)
    bus = SweepEventBus(path=path)
    if wants_live:
        from repro.obs.dashboard import SweepDashboard

        SweepDashboard().attach(bus)
    return bus


def _experiment_runner(args: argparse.Namespace) -> Runner:
    """Build the Runner a subcommand asked for: executor + result store.

    ``--workers N`` swaps in the process-pool executor; ``--resume``
    persists completed cells under ``<ledger>/cells/`` so a later
    invocation warm-starts instead of re-simulating; ``--events`` /
    ``--live`` attach the sweep event bus.  Subcommands without those
    flags get the plain serial, memory-only, unobserved runner.
    """
    workers = getattr(args, "workers", 1) or 1
    store = None
    if getattr(args, "resume", False):
        ledger_dir = getattr(args, "ledger", None) or DEFAULT_LEDGER_DIR
        store = ResultStore(os.path.join(ledger_dir, "cells"))
    runner = Runner(
        seed=args.seed,
        duration_ms=args.duration,
        warmup_ms=args.warmup,
        executor=make_executor(
            workers, cell_timeout_s=getattr(args, "cell_timeout", None)
        ),
        store=store,
    )
    runner.bus = _sweep_bus(args)
    return runner


def _cmd_figure(args: argparse.Namespace, runner: Runner) -> str:
    from repro.experiments import figures

    generators = {
        "1": lambda: figures.fig01_fps_gap(runner),
        "3": lambda: figures.fig03_regulation_fps(runner),
        "4": lambda: figures.fig04_time_variation(seed=args.seed),
        "5": lambda: figures.fig05_pipeline_schedules(seed=args.seed),
        "6": lambda: figures.fig06_mtp_latency(runner),
        "7": lambda: figures.fig07_dram_efficiency(runner),
        "9": lambda: figures.fig09_qos_averages(runner),
        "10": lambda: figures.fig10_client_fps_detail(runner),
        "11": lambda: figures.fig11_mtp_detail(runner),
        "12": lambda: figures.fig12_memory_efficiency(runner),
        "13": lambda: figures.fig13_power(runner),
    }
    return generators[args.number]()["text"]


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _dispatch(argv)
    except ExecutionError as exc:
        # A sweep finished with failed cells: everything completed is
        # already persisted; report the casualties and exit non-zero.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # pragma: no cover - consumer closed the pipe
        # e.g. ``odr-sim runs | head``: point stdout at devnull so the
        # interpreter's exit-time flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


def _dispatch(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "verify-determinism":
        return _cmd_verify_determinism(args)
    if args.command == "profile":
        print(_cmd_profile(args))
        return 0
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "runs":
        return _cmd_runs(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "sweep-trace":
        return _cmd_sweep_trace(args)
    if args.command == "cost":
        return _cmd_cost(args)
    if args.command == "baseline":
        return _cmd_baseline(args)
    if args.command == "compare-runs":
        return _cmd_compare_runs(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command in ("serve", "submit", "status", "fetch"):
        from repro.service.cli import run_service_command

        return run_service_command(args)
    runner = _experiment_runner(args)

    if args.command == "run":
        print(_cmd_run(args))
    elif args.command == "trace":
        print(_cmd_trace(args))
    elif args.command == "figure":
        from repro.experiments import figures

        # Plan → execute → render: declare the figure's cells and run
        # them (possibly in parallel) before the renderer reads them.
        runner.run_plan(figures.figure_demands(args.number, runner))
        print(_cmd_figure(args, runner))
        if args.number == "5":
            from repro.experiments.timeline import run_timeline

            print()
            for spec in ("NoReg", "Int60", "ODR60"):
                config = SystemConfig(
                    "IM", PLATFORMS["private"], Resolution("720p"), seed=args.seed,
                    duration_ms=2000.0, warmup_ms=500.0,
                )
                result = CloudSystem(config, make_regulator(spec)).run()
                print(run_timeline(result, window_ms=250.0, title=f"-- {spec} --"))
                print()
    elif args.command == "table2":
        from repro.experiments.tables import table2, table2_demands

        runner.run_plan(table2_demands(runner))
        print(table2(runner)["text"])
    elif args.command == "summary":
        from repro.experiments.figures import summary_demands, summary_overall

        runner.run_plan(summary_demands(runner))
        print(summary_overall(runner)["text"])
    elif args.command == "userstudy":
        from repro.experiments.userstudy import run_user_study

        study = run_user_study(runner, seed=args.seed)
        print(study["fig14_text"])
        print()
        print(study["fig15_text"])
    elif args.command == "matrix":
        from repro.experiments.export import records_to_csv
        from repro.experiments.plan import matrix_demands

        runner.telemetry_dir = args.telemetry_dir
        if args.ledger:
            runner.attach_ledger(args.ledger)
        plan = matrix_demands(
            benchmarks=sorted(args.benchmarks) if args.benchmarks else None,
            groups=args.groups,
            include_ablation=args.ablation,
            seeds=(args.seed,),
            duration_ms=args.duration,
            warmup_ms=args.warmup,
        )
        report = runner.run_plan(plan, allow_failures=True)
        count = records_to_csv(report.records(), args.output)
        print(
            f"wrote {count} rows to {args.output} "
            f"(executed={report.executed} cached={report.cached})"
        )
        if runner.bus is not None and runner.bus.path is not None:
            print(
                f"sweep events at {runner.bus.path} "
                f"(sweep {runner.bus.sweep_id})"
            )
        if report.failures:
            for failure in report.failures:
                print(
                    f"matrix: FAILED {failure.spec.label}: {failure.error}",
                    file=sys.stderr,
                )
            if runner.bus is not None:
                runner.bus.close()
            return 1
    elif args.command == "compare":
        from repro.analysis import paired_compare
        from repro.workloads import PLATFORMS as platforms

        platform = platforms[args.platform]
        resolution = Resolution(args.resolution)

        def factory(spec):
            def run_seed(seed):
                config = SystemConfig(
                    args.benchmark, platform, resolution, seed=seed,
                    duration_ms=args.duration, warmup_ms=args.warmup,
                )
                return CloudSystem(config, make_regulator(spec)).run().summary()

            return run_seed

        deltas = paired_compare(
            factory(args.regulator_a), factory(args.regulator_b),
            seeds=range(1, args.seeds + 1),
        )
        print(
            f"{args.regulator_b} minus {args.regulator_a} on {args.benchmark} "
            f"({args.platform} {args.resolution}, {args.seeds} paired seeds):"
        )
        for name in deltas.names():
            summary = deltas[name]
            marker = ""
            if summary.significantly_positive():
                marker = "  [+]"
            elif summary.significantly_negative():
                marker = "  [-]"
            print(f"  {name:16s} {summary.mean:+10.3f} ± {summary.ci95_halfwidth:.3f}{marker}")
    elif args.command == "consolidate":
        from repro.multitenant import SharedServer
        from repro.workloads import BENCHMARKS as benches

        names = sorted(benches)
        platform = PLATFORMS[args.platform]
        resolution = Resolution(args.resolution)
        target = float(resolution.default_fps_target)
        for n in range(1, args.max_sessions + 1):
            server = SharedServer(
                benchmarks=[names[i % len(names)] for i in range(n)],
                platform=platform,
                resolution=resolution,
                regulator_factory=lambda i: make_regulator(args.regulator),
                seed=args.seed,
                duration_ms=args.duration,
                warmup_ms=args.warmup,
            )
            results = server.run()
            ok = all(r.client_fps >= target - 1.0 for r in results)
            fps = ", ".join(f"{r.benchmark}:{r.client_fps:.0f}" for r in results)
            print(
                f"  {n} session(s): [{fps}]  GPU {server.gpu_utilization():4.0%}  "
                f"{server.server_power_w():6.1f} W  "
                f"{'MEETS TARGET' if ok else 'degraded'}"
            )
    elif args.command == "breakdown":
        from repro.analysis import latency_breakdown

        config = SystemConfig(
            args.benchmark, PLATFORMS[args.platform], Resolution(args.resolution),
            seed=args.seed, duration_ms=args.duration, warmup_ms=args.warmup,
        )
        result = CloudSystem(config, make_regulator(args.regulator)).run()
        breakdown = latency_breakdown(result)
        print(
            f"MtP latency breakdown: {args.benchmark} / {args.regulator} "
            f"({args.platform} {args.resolution})"
        )
        for name, value in breakdown.components.items():
            bar = "#" * max(1, int(round(40 * breakdown.fraction(name))))
            print(f"  {name:14s} {value:9.2f} ms  {bar}")
        print(f"  {'total':14s} {breakdown.total_ms:9.2f} ms  (n={breakdown.samples})")
    elif args.command == "list":
        print("benchmarks : " + ", ".join(sorted(BENCHMARKS)))
        print("platforms  : " + ", ".join(sorted(PLATFORMS)))
        print("configurations (paper matrix):")
        for config in paper_configuration_matrix(include_ablation=True):
            print(f"  {config.label}")
    if runner.bus is not None:
        runner.bus.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
