"""Multi-session server consolidation.

The paper's motivation is datacenter efficiency: interactive 3D is "an
emerging type of data center workload", and cycles wasted on excessive
rendering are cycles another tenant could have used.  This package
makes that argument quantitative by hosting **several cloud-gaming
sessions on one simulated server**: all sessions share the GPU (renders
serialize), a bounded encoder pool, the uplink, and the DRAM-contention
domain, while each keeps its own client, input stream, and regulator.

The headline result (``benchmarks/test_extension_multitenant.py``):
under NoReg a single session already saturates the GPU, so co-located
sessions immediately degrade each other; under ODR each session only
consumes what its FPS target needs, and the same server sustains
several sessions at full QoS — consolidation density is the datacenter
payoff of removing excessive rendering.
"""

from repro.multitenant.server import SessionResult, SharedServer, TenantSession

__all__ = ["SessionResult", "SharedServer", "TenantSession"]
