"""A shared cloud server hosting several independent game sessions.

Each :class:`TenantSession` is a full pipeline — app, proxy, network
sender, client, input stream, regulator — structurally identical to a
single-session :class:`~repro.pipeline.system.CloudSystem`, but all
sessions live in **one** simulation environment and share:

* the **GPU** (a capacity-1 resource: concurrent renders serialize,
  exactly like contexts time-sharing one device);
* the **encoder pool** (capacity = CPU encode slots);
* the **uplink** (one serial transmitter; per-session traffic
  interleaves frame-by-frame);
* the **DRAM-contention domain** (every busy stage of every session
  inflates everyone's service times).

Per-session metrics (FPS, gap, MtP, QoS) stay separate; server-level
power is computed from the merged activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.hardware.power import PowerModel
from repro.metrics import FpsCounter, MtpLatencyTracker, qos_satisfaction
from repro.metrics.stats import BoxStats, summarize
from repro.pipeline.app import Application3D
from repro.pipeline.client import Client
from repro.pipeline.contention import ContentionTracker
from repro.pipeline.inputs import InputGenerator
from repro.pipeline.network import NetworkPath
from repro.pipeline.proxy import ServerProxy
from repro.regulators.base import Regulator
from repro.simcore import Environment, IntervalTrace, Resource, SeededRng
from repro.workloads import (
    BenchmarkProfile,
    PlatformProfile,
    Resolution,
    get_benchmark,
)

__all__ = ["SessionResult", "SharedServer", "TenantSession"]


class TenantSession:
    """One session's private pipeline inside a shared server.

    Duck-compatible with :class:`~repro.pipeline.system.CloudSystem`
    where the stage components require it (``env``, ``samplers``,
    ``counter``, ``tracker``, ``trace``, ``contention``, ``regulator``,
    shared-resource handles, ...).
    """

    def __init__(
        self,
        server: "SharedServer",
        index: int,
        benchmark: BenchmarkProfile,
        regulator: Regulator,
    ):
        self.server = server
        self.index = index
        self.benchmark = benchmark
        self.platform = server.platform
        self.resolution = server.resolution
        self.regulator = regulator

        self.env = server.env
        self.rng = server.rng.child("session", index)
        self.counter = FpsCounter()
        self.tracker = MtpLatencyTracker()
        self.trace = IntervalTrace()
        # A labeled view on the server's shared telemetry: this session's
        # spans and metric series carry a session="s<index>" label.
        self.telemetry = (
            server.telemetry.for_session(f"s{index}")
            if server.telemetry is not None
            else None
        )

        # shared server state
        self.contention = server.contention
        self.gpu_resource = server.gpu
        self.encode_resource = server.encoder_pool
        self.link_resource = server.uplink
        self.abr = None
        # No per-session fault injection (CloudSystem duck interface).
        self.faults = None

        models = benchmark.stage_models(self.platform, self.resolution)
        self.samplers = {
            stage: model.sampler(self.rng.child("stage", stage))
            for stage, model in models.items()
        }
        self.size_sampler = benchmark.frame_size_model(self.resolution).sampler(
            self.rng.child("frame_size")
        )

        self.proxy = ServerProxy(self)
        self.network = NetworkPath(self)
        self.client = Client(self, refresh_hz=regulator.client_refresh_hz)
        self.app = Application3D(self)
        self.inputs = InputGenerator(
            env=self.env,
            rng=self.rng.child("inputs"),
            actions_per_second=benchmark.actions_per_second,
            uplink_ms=self.platform.uplink_ms,
            deliver=self.app.deliver_input,
            tracker=self.tracker,
        )
        regulator.attach(self)
        # Per-session client-FPS feedback (adaptive regulators' hook).
        self.env.process(self._client_fps_reporter(), name=f"fps-reporter-{index}")

    def _client_fps_reporter(self):
        env = self.env
        last_count = 0
        while True:
            yield env.timeout(1000.0)
            count = self.counter.count("decode")
            fps = float(count - last_count)
            last_count = count
            env.call_at(
                env.now + self.platform.uplink_ms,
                lambda f=fps: self.regulator.on_client_fps_report(f),
            )


@dataclass(frozen=True)
class SessionResult:
    """Per-session measurements of one shared-server run."""

    index: int
    benchmark: str
    regulator: str
    render_fps: float
    client_fps: float
    fps_gap_mean: float
    mtp_mean_ms: Optional[float]
    mtp_box: Optional[BoxStats]
    qos_satisfaction: float


class SharedServer:
    """N sessions consolidated onto one simulated server.

    Parameters
    ----------
    benchmarks:
        One benchmark (name or profile) per session.
    regulator_factory:
        Called once per session index to create its regulator (sessions
        must not share regulator instances).
    gpu_slots, encode_slots:
        Device capacities.  One GPU context renders at a time by
        default; a 16-core server comfortably runs a few encoder
        threads.
    telemetry:
        Optional shared :class:`repro.obs.Telemetry`; each session
        publishes into it under a ``session="s<index>"`` label.
    """

    def __init__(
        self,
        benchmarks: Sequence,
        platform: PlatformProfile,
        resolution: Resolution,
        regulator_factory: Callable[[int], Regulator],
        seed: int = 1,
        duration_ms: float = 20000.0,
        warmup_ms: float = 3000.0,
        gpu_slots: int = 1,
        encode_slots: int = 4,
        contention_beta: float = 0.25,
        qos_target_fps: Optional[float] = None,
        telemetry=None,
    ):
        if not benchmarks:
            raise ValueError("need at least one session")
        if gpu_slots < 1 or encode_slots < 1:
            raise ValueError("device capacities must be >= 1")
        self.platform = platform
        self.resolution = resolution
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.qos_target_fps = (
            qos_target_fps
            if qos_target_fps is not None
            else float(resolution.default_fps_target)
        )
        self.telemetry = telemetry

        self.env = Environment(probe=telemetry.probe if telemetry is not None else None)
        self.rng = SeededRng(seed, name="server")
        self.contention = ContentionTracker(beta=contention_beta)
        self.gpu = Resource(self.env, capacity=gpu_slots)
        self.encoder_pool = Resource(self.env, capacity=encode_slots)
        self.uplink = Resource(self.env, capacity=1)

        self.sessions: List[TenantSession] = []
        for index, bench in enumerate(benchmarks):
            profile = bench if isinstance(bench, BenchmarkProfile) else get_benchmark(bench)
            regulator = regulator_factory(index)
            self.sessions.append(TenantSession(self, index, profile, regulator))

    @property
    def t_start(self) -> float:
        return self.warmup_ms

    @property
    def t_end(self) -> float:
        return self.warmup_ms + self.duration_ms

    def run(self) -> List[SessionResult]:
        """Execute the shared simulation; return per-session results."""
        self.env.run(until=self.t_end)
        results = []
        for session in self.sessions:
            counter = session.counter
            gap = counter.fps_gap(self.t_start, self.t_end)
            samples = [
                s.latency_ms
                for s in session.tracker.samples
                if self.t_start <= s.issued_at < self.t_end
            ]
            qos = qos_satisfaction(
                counter.times("decode"), self.qos_target_fps, self.t_start, self.t_end
            )
            results.append(
                SessionResult(
                    index=session.index,
                    benchmark=session.benchmark.name,
                    regulator=session.regulator.name,
                    render_fps=counter.mean_fps("render", self.t_start, self.t_end),
                    client_fps=counter.mean_fps("decode", self.t_start, self.t_end),
                    fps_gap_mean=gap.mean_gap,
                    mtp_mean_ms=(sum(samples) / len(samples)) if samples else None,
                    mtp_box=summarize(samples) if samples else None,
                    qos_satisfaction=qos.satisfaction if qos.n_windows else 0.0,
                )
            )
        return results

    # -- server-level metrics -------------------------------------------------

    def gpu_utilization(self) -> float:
        """Merged render busy fraction across all sessions."""
        window = self.t_end - self.t_start
        busy = sum(
            s.trace.busy_time("render", self.t_start, self.t_end) for s in self.sessions
        )
        return busy / (window * self.gpu.capacity)

    def server_power_w(self, model: PowerModel = PowerModel()) -> float:
        """Wall power of the whole server (merged activity).

        Uses the same coefficients as the single-session model: one
        idle platform plus the sessions' summed dynamic terms.
        """
        window = self.t_end - self.t_start
        total = model.idle_w
        gpu_busy = 0.0
        cpu_busy = 0.0
        for session in self.sessions:
            counter = session.counter
            render_fps = counter.mean_fps("render", self.t_start, self.t_end)
            encode_fps = counter.mean_fps("encode", self.t_start, self.t_end)
            logic_factor = 0.75 + 0.25 * session.benchmark.logic_cpu_weight
            total += model.render_w_per_fps * logic_factor * render_fps
            total += model.encode_w_per_fps * encode_fps
            gpu_busy += session.trace.busy_time("render", self.t_start, self.t_end)
            cpu_busy += session.trace.busy_time("encode", self.t_start, self.t_end)
        total += model.gpu_residency_w * min(1.0, gpu_busy / (window * self.gpu.capacity))
        total += model.cpu_residency_w * min(
            1.0, cpu_busy / (window * self.encoder_pool.capacity)
        )
        return total
